(** Sound static I-cache analysis: Must (guaranteed-hit) and May
    (guaranteed-miss) age abstract interpretations plus a loop-scoped
    Persistence (first-miss) classification, run over the
    context-insensitive supergraph as {!Dataflow.solve_values}
    instances of the {!Cachedom} lattice.

    Every classification is a guarantee about real executions that
    start from an empty cache under whole-block fill; anything the
    analysis cannot promise is [Unknown], and whole configurations it
    cannot model (sectored/partial fill, prefetch, >254 ways, a capped
    solve) are gated — [gated] names the reason and every access stays
    [Unknown].  Irreducible functions degrade to [Unknown] per
    function, with a warning carrying the {!Loops} witness. *)

open Ir

type cls =
  | Hit  (** always hits (after the supergraph-entry boundary) *)
  | Miss  (** always misses *)
  | First_miss of int
      (** misses at most once per entry to [scopes.(i)] *)
  | Unknown

type scope = {
  s_fid : int;
  s_header : Cfg.label;
  s_depth : int;
  s_body : int array;
      (** first-miss members, sorted: the syntactic loop body plus every
          function whose call sites ALL lie inside the scope (their
          blocks cannot execute outside a stay in the loop) *)
  s_header_gid : int;
  s_persistent : Bytes.t;  (** per cache set: ['\001'] = scope fits *)
}

type t = {
  prog : Prog.program;
  map : Placement.Address_map.t;
  config : Icache.Config.t;
  universe : Cachedom.universe option;  (** [None] iff gated pre-solve *)
  nnodes : int;
  offsets : int array;  (** fid -> first gid *)
  node_fid : int array;
  node_label : int array;
  naccesses : int array;  (** line fetches per node, valid when gated *)
  accesses : int array array;  (** dense line ids per node *)
  cls : cls array array;
  reachable : bool array;  (** supergraph-reachable from the entry *)
  scopes : scope array;
  gated : string option;
  capped : bool;
  consistent : bool;
      (** no access was both must-hit and may-absent (domain invariant;
          a [false] here is an analysis bug, checked by QCheck) *)
  must_iterations : int;
  may_iterations : int;
  warnings : Diag.t list;
}

val gid : t -> int -> Cfg.label -> int

val block_lines : Icache.Config.t -> addr:int -> words:int -> int list
(** Absolute line numbers a block fetches, in order, consecutive
    duplicates collapsed. *)

val default_max_iters : int -> int

val analyze :
  ?max_iters:int ->
  Icache.Config.t ->
  Placement.Address_map.t ->
  Prog.program ->
  t
(** [max_iters] defaults to {!default_max_iters} of the node count;
    hitting the cap gates the whole result. *)

type totals = {
  t_hit : int;
  t_miss : int;
  t_first : int;
  t_unknown : int;
  t_accesses : int;
  t_blocks : int;  (** reachable blocks *)
  t_blocks_classified : int;  (** reachable blocks fully classified *)
}

val totals : t -> totals

type interval = {
  lo : int;
  hi : int;
  accesses : int;  (** weighted line fetches *)
  fetches : int;  (** weighted instruction words (miss-ratio denominator) *)
  w_hit : int;
  w_miss : int;
  w_first : int;
  w_unknown : int;
}

val interval :
  ?entries:(int -> int) -> t -> counts:(int -> Cfg.label -> int) -> interval
(** Sound miss-count interval for any execution whose per-block counts
    match [counts]: [lo] sums guaranteed misses, [hi] adds unclassified
    accesses in full and each (scope, line) first-miss group capped by
    [entries] — an upper bound on the number of stays in that scope,
    defaulting to the scope header's count (always sound, very loose
    for hot loops; pass {!profile_entries} or {!tracked_entries} to get
    per-entry rather than per-iteration caps). *)

val profile_entries :
  t -> weights:(int -> Placement.Weight.cfg_weights) -> int -> int
(** Stay bound from profile arc weights: arcs into the header from
    outside the body, plus function invocations for a block-0 header. *)

(** {2 Exact stay counting over an executed block stream} *)

type tracker

val tracker : t -> tracker

val track : tracker -> int -> Cfg.label -> unit
(** Feed executed blocks in order; accumulates per-block counts and
    per-scope stay counts (header executed, previous block outside the
    scope's members). *)

val tracked_counts : tracker -> int -> Cfg.label -> int
val tracked_entries : tracker -> int -> int

val blocks_classified_total : Obs.Metrics.counter
val must_iterations_total : Obs.Metrics.counter
val may_iterations_total : Obs.Metrics.counter
