(* Mutable bitsets backed by an int array, 62 usable bits per word (the
   top bit of a 63-bit OCaml int is left unused so [count] can rely on a
   clean mask of the final word). *)

let bits_per_word = 62

type t = { n : int; words : int array }

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { n; words = Array.make (max 1 (nwords n)) 0 }

let universe t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg
      (Printf.sprintf "Bitset: element %d outside universe [0,%d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

(* Mask of valid bits in the last word, so [fill] never sets bits past
   the universe. *)
let last_mask t =
  let rem = t.n mod bits_per_word in
  if rem = 0 && t.n > 0 then (1 lsl bits_per_word) - 1
  else (1 lsl rem) - 1

let fill t =
  let last = Array.length t.words - 1 in
  for k = 0 to last do
    t.words.(k) <- (1 lsl bits_per_word) - 1
  done;
  if t.n = 0 then t.words.(0) <- 0 else t.words.(last) <- last_mask t

let copy t = { t with words = Array.copy t.words }

let same_universe a b op =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Bitset.%s: universes %d and %d differ" op a.n b.n)

let assign ~dst src =
  same_universe dst src "assign";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let equal a b =
  same_universe a b "equal";
  a.words = b.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  go 0 w

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let union_into ~dst src =
  same_universe dst src "union_into";
  let changed = ref false in
  for k = 0 to Array.length dst.words - 1 do
    let w = dst.words.(k) lor src.words.(k) in
    if w <> dst.words.(k) then begin
      dst.words.(k) <- w;
      changed := true
    end
  done;
  !changed

let inter_into ~dst src =
  same_universe dst src "inter_into";
  let changed = ref false in
  for k = 0 to Array.length dst.words - 1 do
    let w = dst.words.(k) land src.words.(k) in
    if w <> dst.words.(k) then begin
      dst.words.(k) <- w;
      changed := true
    end
  done;
  !changed

let transfer ~gen ~kill ~src ~dst =
  same_universe dst src "transfer";
  same_universe dst gen "transfer";
  same_universe dst kill "transfer";
  let changed = ref false in
  for k = 0 to Array.length dst.words - 1 do
    let w = gen.words.(k) lor (src.words.(k) land lnot kill.words.(k)) in
    if w <> dst.words.(k) then begin
      dst.words.(k) <- w;
      changed := true
    end
  done;
  !changed

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0
    then f i
  done

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
