(** Natural-loop detection over the dominator tree: back edges, loop
    bodies, nesting depth, and a reducibility check.

    A retreating edge (target is a DFS ancestor of the source) is a
    {e back edge} only when its target dominates its source; a natural
    loop is the back edge's target plus every block that reaches the
    source without passing through the target.  Retreating edges that
    are not back edges witness irreducible control flow (the multiple-
    entry cycles the paper's trace selection handles only heuristically),
    and are reported rather than turned into loops. *)

open Ir

type loop = {
  header : Cfg.label;
  body : Cfg.label list;  (** sorted; includes the header *)
  latches : Cfg.label list;  (** sources of the back edges, sorted *)
  depth : int;  (** 1 = outermost *)
  parent : int option;  (** index of the innermost enclosing loop *)
}

type t = {
  loops : loop array;  (** sorted by header label, outer before inner *)
  depth_of : int array;  (** per block; 0 = not in any loop *)
  loop_of : int array;  (** innermost loop index per block, -1 = none *)
  reducible : bool;
  irreducible_edges : (Cfg.label * Cfg.label) list;
      (** retreating edges whose target does not dominate their source *)
}

val of_func : Prog.func -> t

val blocks_of : t -> int -> Cfg.label list
(** Body of loop [i] (sorted), e.g. for iterating a lint finding. *)
