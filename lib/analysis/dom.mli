(** Dominator and post-dominator trees, via the Cooper–Harvey–Kennedy
    iterative algorithm over reverse-postorder numbering.

    Both directions share one representation: a rooted tree over node
    indices where [idom.(root) = root] and nodes that cannot reach (or be
    reached from) the root carry [idom = -1] — for dominators these are
    the statically unreachable blocks, for post-dominators the blocks
    that never reach a [Ret] (infinite loops).

    Post-dominance is computed on the reversed CFG extended with one
    virtual exit node (index [nblocks]) that every [Ret] block flows to,
    so functions with several returns still get a single tree root. *)

open Ir

type t = {
  root : int;
  idom : int array;
      (** immediate dominator per node; [idom.(root) = root]; [-1] when
          the node is disconnected from the root *)
  rpo : int array;
      (** reverse-postorder number per node, [-1] when disconnected *)
}

val dominators : Prog.func -> t
(** Tree over the function's blocks, rooted at the entry (label 0). *)

val post_dominators : Prog.func -> t
(** Tree over blocks plus a virtual exit: [idom] and [rpo] have length
    [nblocks + 1] and [root = nblocks] is the virtual exit. *)

val virtual_exit : t -> int option
(** The virtual exit index of a post-dominator tree, [None] for a
    dominator tree. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: [a] (post-)dominates [b], reflexively.  False
    whenever [b] is disconnected from the root. *)

val dom_set : t -> int -> int list
(** All dominators of a node, from the node itself up to the root;
    [[]] when disconnected. *)

val depth : t -> int -> int
(** Tree depth of a node (root = 0); [-1] when disconnected. *)
