(** Register liveness of the mini-C IR's virtual registers: the classic
    backward-Union instance of the dataflow framework over block-level
    use/def sets.

    Block granularity: [use] holds the registers read before any write
    within the block (terminator reads included), [def] the registers
    written anywhere in it.  A call's result register counts as a def of
    the calling block — the value becomes available on the arc to the
    return continuation, which block-level liveness cannot distinguish
    from the block's own writes. *)

open Ir

type t = {
  live_in : Bitset.t array;
  live_out : Bitset.t array;
  use : Bitset.t array;
  def : Bitset.t array;
  iterations : int;
}

val of_func : Prog.func -> t
(** Universe size is the function's [nregs]; [Ret] blocks are the
    dataflow boundary with an empty live-out. *)

val dead_stores : Prog.func -> t -> (Cfg.label * Insn.reg) list
(** Registers written by a block but neither read later inside it nor
    live out of it — a per-block over-approximation useful as a lint
    ingredient and a framework sanity check. *)
