(** Bounded age-vector lattice for abstract I-cache states: one byte of
    abstract LRU age (0..ways, [ways] = absent/top) per cache line in
    the program's line universe, keyed by cache set from
    {!Icache.Config}.  Must states hold upper bounds on true age
    (joined by pointwise max ⇒ [age < ways] certifies a hit); May
    states hold lower bounds (joined by pointwise min ⇒ [age = ways]
    certifies a miss).  {!Absint} runs both as
    {!Dataflow.solve_values} instances. *)

val max_ways : int
(** Byte-encoded ages cap usable associativity (254); larger configs
    must be gated, not analyzed. *)

type universe = {
  ways : int;  (** top age *)
  nlines : int;
  line_no : int array;  (** dense id -> absolute line number *)
  set_of : int array;  (** dense id -> cache set index *)
  mates : int array array;  (** dense id -> other dense ids in its set *)
  nsets : int;
}

type state = Bytes.t

val universe : Icache.Config.t -> int list -> universe
(** Dense-id universe over the given absolute line numbers (duplicates
    fine).  Raises [Invalid_argument] beyond {!max_ways} ways. *)

val id_table : universe -> (int, int) Hashtbl.t
(** Absolute line number -> dense id. *)

val top : universe -> state
(** All lines absent — the empty-cache boundary value of both domains. *)

val copy : state -> state
val assign : dst:state -> state -> unit
val equal : state -> state -> bool
val age : state -> int -> int
val access_must : universe -> state -> int -> unit
val access_may : universe -> state -> int -> unit
val must_lattice : universe -> state Dataflow.lattice
val may_lattice : universe -> state Dataflow.lattice
