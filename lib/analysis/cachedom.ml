(* Bounded age-vector lattice for abstract I-cache states.

   A state maps every cache line the program can touch (its "line
   universe": dense ids over the distinct line numbers covered by the
   address map) to an abstract LRU age in 0..ways, stored as one byte
   per line.  Age [ways] is the top element "possibly/definitely absent"
   depending on the domain reading it:

   - Must states keep an UPPER bound on the true age, so
     [age < ways] proves residence (guaranteed hit).  Join is the
     pointwise MAX (keep the weakest upper bound).
   - May states keep a LOWER bound, so [age = ways] proves absence
     (guaranteed miss).  Join is the pointwise MIN.

   The transfer on an access to line l only renumbers lines of l's
   cache set, mirroring LRU: l's age drops to 0 and set-mates below
   the evicted bound age one step (strictly-younger mates for Must,
   younger-or-equal for May — the classic Ferdinand/Wilhelm update).

   One byte per age caps usable associativity at 254 ways; {!Absint}
   gates larger configurations to "unclassified" rather than lie. *)

let max_ways = 254

type universe = {
  ways : int;  (* also the top age *)
  nlines : int;
  line_no : int array;  (* dense id -> absolute line number *)
  set_of : int array;  (* dense id -> cache set index *)
  mates : int array array;  (* dense id -> OTHER dense ids in its set *)
  nsets : int;
}

type state = Bytes.t

let universe (config : Icache.Config.t) (lines : int list) : universe =
  let ways = Icache.Config.ways_of config in
  if ways > max_ways then
    invalid_arg
      (Printf.sprintf "Cachedom.universe: %d ways exceeds the %d-way cap" ways
         max_ways);
  let nsets = Icache.Config.nsets config in
  let sorted = List.sort_uniq compare lines in
  let line_no = Array.of_list sorted in
  let nlines = Array.length line_no in
  let set_of = Array.map (fun l -> l mod nsets) line_no in
  let by_set = Array.make nsets [] in
  Array.iteri (fun id s -> by_set.(s) <- id :: by_set.(s)) set_of;
  let mates =
    Array.init nlines (fun id ->
        List.filter (fun m -> m <> id) by_set.(set_of.(id))
        |> List.rev |> Array.of_list)
  in
  { ways; nlines; line_no; set_of; mates; nsets }

let id_table (u : universe) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create (2 * u.nlines) in
  Array.iteri (fun id l -> Hashtbl.replace tbl l id) u.line_no;
  tbl

(* All-absent: every age at top.  Both the boundary value (the simulator
   starts each run with an empty cache) and the interior init (for Must
   it claims nothing, for May interior values are overwritten by the
   first meet on every reachable node). *)
let top (u : universe) : state = Bytes.make u.nlines (Char.chr u.ways)
let copy (st : state) : state = Bytes.copy st
let assign ~(dst : state) (src : state) : unit =
  Bytes.blit src 0 dst 0 (Bytes.length src)

let equal = Bytes.equal
let age (st : state) (id : int) : int = Char.code (Bytes.unsafe_get st id)
let set_age (st : state) (id : int) (a : int) : unit =
  Bytes.unsafe_set st id (Char.unsafe_chr a)

(* dst := pointwise max (weakest upper bound wins) *)
let must_join_into ~(dst : state) (src : state) : unit =
  for i = 0 to Bytes.length dst - 1 do
    let a = age src i in
    if a > age dst i then set_age dst i a
  done

(* dst := pointwise min (weakest lower bound wins) *)
let may_join_into ~(dst : state) (src : state) : unit =
  for i = 0 to Bytes.length dst - 1 do
    let a = age src i in
    if a < age dst i then set_age dst i a
  done

(* In-place access transfers.  Reading the accessed line's OLD age
   first makes the in-place mate updates safe: each mate moves
   independently, compared against that saved bound. *)

let access_must (u : universe) (st : state) (id : int) : unit =
  let bound = age st id in
  Array.iter
    (fun m ->
      let a = age st m in
      if a < bound then set_age st m (min (a + 1) u.ways))
    u.mates.(id);
  set_age st id 0

let access_may (u : universe) (st : state) (id : int) : unit =
  let bound = age st id in
  Array.iter
    (fun m ->
      let a = age st m in
      if a <= bound then set_age st m (min (a + 1) u.ways))
    u.mates.(id);
  set_age st id 0

let must_lattice (u : universe) : state Dataflow.lattice =
  {
    Dataflow.make = (fun () -> top u);
    assign;
    join_into = must_join_into;
    equal;
  }

let may_lattice (u : universe) : state Dataflow.lattice =
  {
    Dataflow.make = (fun () -> top u);
    assign;
    join_into = may_join_into;
    equal;
  }
