(** Generic iterative bit-vector dataflow over an explicit flow graph.

    A problem names its universe size, per-node gen/kill sets, direction
    and confluence operator; {!solve} runs a worklist to the (unique,
    by monotonicity) fixpoint.  Reachability, liveness and the linter's
    reaching-weights checks are all instances. *)

open Ir

type direction = Forward | Backward

type confluence =
  | Union  (** may-analyses: reachability, liveness *)
  | Intersection  (** must-analyses: availability, dominance-style facts *)

type problem = {
  nnodes : int;
  nbits : int;  (** universe size of every set *)
  succs : int -> int list;
  preds : int -> int list;
  gen : int -> Bitset.t;
  kill : int -> Bitset.t;
  direction : direction;
  confluence : confluence;
  boundary : int list;
      (** boundary nodes: flow-graph entries for a forward problem,
          exits for a backward one *)
  boundary_value : Bitset.t;  (** input value at the boundary nodes *)
}

type solution = {
  in_ : Bitset.t array;
      (** value flowing into each node's transfer function (block entry
          for forward problems, block exit for backward ones) *)
  out : Bitset.t array;  (** value after the node's transfer function *)
  iterations : int;  (** worklist pops until the fixpoint *)
  capped : bool;
      (** true iff [?max_iters] stopped the worklist early; the solution
          is then a pre-fixpoint and MUST NOT back any soundness claim *)
}

val solve : ?max_iters:int -> problem -> solution
(** [max_iters] caps worklist pops (a widening stand-in for graphs that
    converge slowly, e.g. irreducible CFGs); hitting it sets
    [solution.capped] and logs a warning. *)

(** {2 Generic-lattice solver}

    The same chaotic iteration over caller-supplied value operations —
    the cache age-vector domains of {!Absint} are instances.  Values are
    mutated in place; [make] need not produce a join identity because
    the meet assigns its first contributor and joins the rest. *)

type 'a lattice = {
  make : unit -> 'a;  (** fresh interior value *)
  assign : dst:'a -> 'a -> unit;
  join_into : dst:'a -> 'a -> unit;
  equal : 'a -> 'a -> bool;
}

type 'a value_problem = {
  v_nnodes : int;
  v_succs : int -> int list;
  v_preds : int -> int list;
  v_direction : direction;
  v_boundary : int list;
  v_boundary_value : 'a;
  v_lattice : 'a lattice;
  v_transfer : int -> src:'a -> dst:'a -> unit;  (** [dst := f_v(src)] *)
}

type 'a value_solution = {
  v_in : 'a array;
  v_out : 'a array;
  v_iterations : int;
  v_capped : bool;
  v_warnings : Diag.t list;
      (** the [Lint]-stage cap warning when [v_capped] *)
}

val solve_values : ?max_iters:int -> 'a value_problem -> 'a value_solution

val cfg_preds : Cfg.block array -> Cfg.label list array
(** Predecessor lists derived from {!Cfg.successors}, deduplicated. *)

val iterations_total : Obs.Metrics.counter
(** Telemetry: worklist pops across every [solve] call. *)
