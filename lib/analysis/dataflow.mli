(** Generic iterative bit-vector dataflow over an explicit flow graph.

    A problem names its universe size, per-node gen/kill sets, direction
    and confluence operator; {!solve} runs a worklist to the (unique,
    by monotonicity) fixpoint.  Reachability, liveness and the linter's
    reaching-weights checks are all instances. *)

open Ir

type direction = Forward | Backward

type confluence =
  | Union  (** may-analyses: reachability, liveness *)
  | Intersection  (** must-analyses: availability, dominance-style facts *)

type problem = {
  nnodes : int;
  nbits : int;  (** universe size of every set *)
  succs : int -> int list;
  preds : int -> int list;
  gen : int -> Bitset.t;
  kill : int -> Bitset.t;
  direction : direction;
  confluence : confluence;
  boundary : int list;
      (** boundary nodes: flow-graph entries for a forward problem,
          exits for a backward one *)
  boundary_value : Bitset.t;  (** input value at the boundary nodes *)
}

type solution = {
  in_ : Bitset.t array;
      (** value flowing into each node's transfer function (block entry
          for forward problems, block exit for backward ones) *)
  out : Bitset.t array;  (** value after the node's transfer function *)
  iterations : int;  (** worklist pops until the fixpoint *)
}

val solve : problem -> solution

val cfg_preds : Cfg.block array -> Cfg.label list array
(** Predecessor lists derived from {!Cfg.successors}, deduplicated. *)

val iterations_total : Obs.Metrics.counter
(** Telemetry: worklist pops across every [solve] call. *)
