(* Iterative bit-vector dataflow: a round-robin worklist over an
   explicit graph, with the meet taken over flow-predecessors (graph
   predecessors for a forward problem, successors for a backward one)
   and the classic gen/kill transfer.

   Interior nodes start at the confluence identity (empty set for Union,
   full set for Intersection) so the first meet is a plain copy; nodes
   never reached by the worklist (unreachable from every boundary node)
   keep that identity, which callers can detect — reachability itself is
   the Union instance with an empty gen/kill and a one-bit universe. *)

open Ir

type direction = Forward | Backward
type confluence = Union | Intersection

type problem = {
  nnodes : int;
  nbits : int;
  succs : int -> int list;
  preds : int -> int list;
  gen : int -> Bitset.t;
  kill : int -> Bitset.t;
  direction : direction;
  confluence : confluence;
  boundary : int list;
  boundary_value : Bitset.t;
}

type solution = {
  in_ : Bitset.t array;
  out : Bitset.t array;
  iterations : int;
  capped : bool;
}

let iterations_total =
  Obs.Metrics.counter "analysis.dataflow_iterations"
    ~help:"worklist pops across all dataflow solves"

let cap_warning ~max_iters ~iterations =
  Diag.make ~severity:Warning ~stage:Lint
    "dataflow: iteration cap %d hit after %d worklist pops; solution is a \
     pre-fixpoint and must not be trusted"
    max_iters iterations

let solve ?max_iters (p : problem) : solution =
  let n = p.nnodes in
  let init () =
    Array.init n (fun _ ->
        let s = Bitset.create p.nbits in
        (match p.confluence with Union -> () | Intersection -> Bitset.fill s);
        s)
  in
  let in_ = init () and out = init () in
  (* Flow-direction views: inputs of a node meet over its flow-preds,
     and a changed output reschedules its flow-succs. *)
  let flow_preds, flow_succs =
    match p.direction with
    | Forward -> (p.preds, p.succs)
    | Backward -> (p.succs, p.preds)
  in
  let boundary = Array.make n false in
  List.iter
    (fun b ->
      boundary.(b) <- true;
      Bitset.assign ~dst:in_.(b) p.boundary_value)
    p.boundary;
  let on_list = Array.make n false in
  let queue = Queue.create () in
  let push v =
    if not on_list.(v) then begin
      on_list.(v) <- true;
      Queue.add v queue
    end
  in
  (* Seed in reverse-flow order so one sweep is often enough; the
     boundary nodes come first. *)
  List.iter push p.boundary;
  for v = 0 to n - 1 do
    push v
  done;
  let iterations = ref 0 in
  let capped = ref false in
  let over_cap () =
    match max_iters with
    | Some m when !iterations >= m ->
        capped := true;
        Queue.clear queue;
        true
    | _ -> false
  in
  while not (Queue.is_empty queue || over_cap ()) do
    let v = Queue.pop queue in
    on_list.(v) <- false;
    incr iterations;
    (* Meet over flow-predecessors (the boundary nodes additionally keep
       their boundary value in the mix). *)
    let preds = flow_preds v in
    if preds <> [] || boundary.(v) then begin
      let acc = Bitset.create p.nbits in
      (match p.confluence with
      | Union -> ()
      | Intersection -> Bitset.fill acc);
      let first = ref true in
      let meet src =
        if !first then begin
          Bitset.assign ~dst:acc src;
          first := false
        end
        else
          ignore
            (match p.confluence with
            | Union -> Bitset.union_into ~dst:acc src
            | Intersection -> Bitset.inter_into ~dst:acc src)
      in
      if boundary.(v) then meet p.boundary_value;
      List.iter (fun u -> meet out.(u)) preds;
      Bitset.assign ~dst:in_.(v) acc
    end;
    let changed =
      Bitset.transfer ~gen:(p.gen v) ~kill:(p.kill v) ~src:in_.(v)
        ~dst:out.(v)
    in
    if changed then List.iter push (flow_succs v)
  done;
  Obs.Metrics.incr ~by:!iterations iterations_total;
  if !capped then
    Obs.Log.warn "dataflow: iteration cap hit after %d pops; pre-fixpoint result"
      !iterations;
  { in_; out; iterations = !iterations; capped = !capped }

(* Generic-lattice variant of the same chaotic iteration: callers supply
   the value operations instead of gen/kill bit-vectors.  Values are
   mutated in place ([assign]/[join_into]/[transfer] write into [dst]),
   so a lattice instance over byte arrays allocates exactly 2n + 2
   states for the whole solve.  No join identity is required: the meet
   assigns the first contributor and joins the rest, exactly like the
   bit-vector solver's [first] flag. *)

type 'a lattice = {
  make : unit -> 'a;
      (* fresh interior value; only nodes never popped (unreachable from
         every boundary) still hold it in the solution *)
  assign : dst:'a -> 'a -> unit;
  join_into : dst:'a -> 'a -> unit;
  equal : 'a -> 'a -> bool;
}

type 'a value_problem = {
  v_nnodes : int;
  v_succs : int -> int list;
  v_preds : int -> int list;
  v_direction : direction;
  v_boundary : int list;
  v_boundary_value : 'a;
  v_lattice : 'a lattice;
  v_transfer : int -> src:'a -> dst:'a -> unit;
}

type 'a value_solution = {
  v_in : 'a array;
  v_out : 'a array;
  v_iterations : int;
  v_capped : bool;
  v_warnings : Diag.t list;
}

let solve_values ?max_iters (p : 'a value_problem) : 'a value_solution =
  let n = p.v_nnodes in
  let lat = p.v_lattice in
  let in_ = Array.init n (fun _ -> lat.make ())
  and out = Array.init n (fun _ -> lat.make ()) in
  let scratch = lat.make () in
  let flow_preds, flow_succs =
    match p.v_direction with
    | Forward -> (p.v_preds, p.v_succs)
    | Backward -> (p.v_succs, p.v_preds)
  in
  let boundary = Array.make n false in
  List.iter
    (fun b ->
      boundary.(b) <- true;
      lat.assign ~dst:in_.(b) p.v_boundary_value)
    p.v_boundary;
  let on_list = Array.make n false in
  let queue = Queue.create () in
  let push v =
    if not on_list.(v) then begin
      on_list.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter push p.v_boundary;
  for v = 0 to n - 1 do
    push v
  done;
  let iterations = ref 0 in
  let capped = ref false in
  let over_cap () =
    match max_iters with
    | Some m when !iterations >= m ->
        capped := true;
        Queue.clear queue;
        true
    | _ -> false
  in
  while not (Queue.is_empty queue || over_cap ()) do
    let v = Queue.pop queue in
    on_list.(v) <- false;
    incr iterations;
    let preds = flow_preds v in
    if preds <> [] || boundary.(v) then begin
      let first = ref true in
      let meet src =
        if !first then begin
          lat.assign ~dst:in_.(v) src;
          first := false
        end
        else lat.join_into ~dst:in_.(v) src
      in
      if boundary.(v) then meet p.v_boundary_value;
      List.iter (fun u -> meet out.(u)) preds
    end;
    p.v_transfer v ~src:in_.(v) ~dst:scratch;
    if not (lat.equal scratch out.(v)) then begin
      lat.assign ~dst:out.(v) scratch;
      List.iter push (flow_succs v)
    end
  done;
  Obs.Metrics.incr ~by:!iterations iterations_total;
  let warnings =
    if !capped then begin
      Obs.Log.warn "dataflow: iteration cap hit after %d pops; pre-fixpoint result"
        !iterations;
      [ cap_warning ~max_iters:(Option.get max_iters) ~iterations:!iterations ]
    end
    else []
  in
  {
    v_in = in_;
    v_out = out;
    v_iterations = !iterations;
    v_capped = !capped;
    v_warnings = warnings;
  }

(* Predecessor lists from the terminator successors, deduplicated the
   same way [Cfg.successors] deduplicates its targets. *)
let cfg_preds (blocks : Cfg.block array) : Cfg.label list array =
  let n = Array.length blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun src b ->
      List.iter (fun dst -> preds.(dst) <- src :: preds.(dst))
        (Cfg.successors b))
    blocks;
  Array.map List.rev preds
