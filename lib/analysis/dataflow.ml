(* Iterative bit-vector dataflow: a round-robin worklist over an
   explicit graph, with the meet taken over flow-predecessors (graph
   predecessors for a forward problem, successors for a backward one)
   and the classic gen/kill transfer.

   Interior nodes start at the confluence identity (empty set for Union,
   full set for Intersection) so the first meet is a plain copy; nodes
   never reached by the worklist (unreachable from every boundary node)
   keep that identity, which callers can detect — reachability itself is
   the Union instance with an empty gen/kill and a one-bit universe. *)

open Ir

type direction = Forward | Backward
type confluence = Union | Intersection

type problem = {
  nnodes : int;
  nbits : int;
  succs : int -> int list;
  preds : int -> int list;
  gen : int -> Bitset.t;
  kill : int -> Bitset.t;
  direction : direction;
  confluence : confluence;
  boundary : int list;
  boundary_value : Bitset.t;
}

type solution = {
  in_ : Bitset.t array;
  out : Bitset.t array;
  iterations : int;
}

let iterations_total =
  Obs.Metrics.counter "analysis.dataflow_iterations"
    ~help:"worklist pops across all dataflow solves"

let solve (p : problem) : solution =
  let n = p.nnodes in
  let init () =
    Array.init n (fun _ ->
        let s = Bitset.create p.nbits in
        (match p.confluence with Union -> () | Intersection -> Bitset.fill s);
        s)
  in
  let in_ = init () and out = init () in
  (* Flow-direction views: inputs of a node meet over its flow-preds,
     and a changed output reschedules its flow-succs. *)
  let flow_preds, flow_succs =
    match p.direction with
    | Forward -> (p.preds, p.succs)
    | Backward -> (p.succs, p.preds)
  in
  let boundary = Array.make n false in
  List.iter
    (fun b ->
      boundary.(b) <- true;
      Bitset.assign ~dst:in_.(b) p.boundary_value)
    p.boundary;
  let on_list = Array.make n false in
  let queue = Queue.create () in
  let push v =
    if not on_list.(v) then begin
      on_list.(v) <- true;
      Queue.add v queue
    end
  in
  (* Seed in reverse-flow order so one sweep is often enough; the
     boundary nodes come first. *)
  List.iter push p.boundary;
  for v = 0 to n - 1 do
    push v
  done;
  let iterations = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    on_list.(v) <- false;
    incr iterations;
    (* Meet over flow-predecessors (the boundary nodes additionally keep
       their boundary value in the mix). *)
    let preds = flow_preds v in
    if preds <> [] || boundary.(v) then begin
      let acc = Bitset.create p.nbits in
      (match p.confluence with
      | Union -> ()
      | Intersection -> Bitset.fill acc);
      let first = ref true in
      let meet src =
        if !first then begin
          Bitset.assign ~dst:acc src;
          first := false
        end
        else
          ignore
            (match p.confluence with
            | Union -> Bitset.union_into ~dst:acc src
            | Intersection -> Bitset.inter_into ~dst:acc src)
      in
      if boundary.(v) then meet p.boundary_value;
      List.iter (fun u -> meet out.(u)) preds;
      Bitset.assign ~dst:in_.(v) acc
    end;
    let changed =
      Bitset.transfer ~gen:(p.gen v) ~kill:(p.kill v) ~src:in_.(v)
        ~dst:out.(v)
    in
    if changed then List.iter push (flow_succs v)
  done;
  Obs.Metrics.incr ~by:!iterations iterations_total;
  { in_; out; iterations = !iterations }

(* Predecessor lists from the terminator successors, deduplicated the
   same way [Cfg.successors] deduplicates its targets. *)
let cfg_preds (blocks : Cfg.block array) : Cfg.label list array =
  let n = Array.length blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun src b ->
      List.iter (fun dst -> preds.(dst) <- src :: preds.(dst))
        (Cfg.successors b))
    blocks;
  Array.map List.rev preds
