(* Natural loops from back edges.

   DFS from the entry classifies retreating edges (target on the DFS
   stack); the dominator tree splits them into proper back edges (target
   dominates source -> a natural loop) and irreducibility witnesses.
   Loop bodies come from the standard reverse flood from the latch,
   stopping at the header; loops sharing a header are merged, as usual.
   Nesting is containment of headers: loop B is inside loop A exactly
   when B's header lies in A's body (and B != A). *)

open Ir

type loop = {
  header : Cfg.label;
  body : Cfg.label list;
  latches : Cfg.label list;
  depth : int;
  parent : int option;
}

type t = {
  loops : loop array;
  depth_of : int array;
  loop_of : int array;
  reducible : bool;
  irreducible_edges : (Cfg.label * Cfg.label) list;
}

let of_func (f : Prog.func) : t =
  let blocks = f.Prog.blocks in
  let n = Array.length blocks in
  let preds = Dataflow.cfg_preds blocks in
  let dom = Dom.dominators f in
  (* Retreating edges: DFS with an explicit on-stack mark. *)
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let retreating = ref [] in
  let rec visit u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if color.(v) = 0 then visit v
        else if color.(v) = 1 then retreating := (u, v) :: !retreating)
      (Cfg.successors blocks.(u));
    color.(u) <- 2
  in
  if n > 0 then visit 0;
  let back, irreducible_edges =
    List.partition (fun (src, dst) -> Dom.dominates dom dst src)
      (List.rev !retreating)
  in
  (* Natural loop of a header: flood backwards from every latch until
     the header.  Latches of the same header merge into one loop; blocks
     unreachable from the entry are never part of a body (they are not
     dominated by the header). *)
  let reach = Cfg.reachable blocks in
  let headers = List.sort_uniq compare (List.map snd back) in
  let loops_raw =
    List.map
      (fun header ->
        let latches =
          List.sort compare
            (List.filter_map
               (fun (src, dst) -> if dst = header then Some src else None)
               back)
        in
        let in_body = Array.make n false in
        in_body.(header) <- true;
        let rec flood v =
          if reach.(v) && not in_body.(v) then begin
            in_body.(v) <- true;
            List.iter flood preds.(v)
          end
        in
        List.iter flood latches;
        let body =
          List.filter (fun l -> in_body.(l)) (List.init n Fun.id)
        in
        (header, body, latches))
      headers
  in
  (* Nesting: B inside A iff A contains B's header (strictly different
     loops).  With same-header loops merged, body containment follows. *)
  let nloops = List.length loops_raw in
  let arr = Array.of_list loops_raw in
  let contains a b =
    (* loop a's body contains loop b's header *)
    let _, body_a, _ = arr.(a) and hb, _, _ = arr.(b) in
    a <> b && List.mem hb body_a
  in
  let all = List.init nloops Fun.id in
  let depth_arr =
    Array.init nloops (fun b ->
        1 + List.length (List.filter (fun a -> contains a b) all))
  in
  let parent_arr =
    Array.init nloops (fun b ->
        (* Innermost enclosing loop: the enclosing loop of maximum
           depth. *)
        List.fold_left
          (fun best a ->
            if not (contains a b) then best
            else
              match best with
              | Some cur when depth_arr.(cur) >= depth_arr.(a) -> best
              | _ -> Some a)
          None all)
  in
  let loops =
    Array.init nloops (fun i ->
        let header, body, latches = arr.(i) in
        {
          header;
          body;
          latches;
          depth = depth_arr.(i);
          parent = parent_arr.(i);
        })
  in
  let depth_of = Array.make n 0 in
  let loop_of = Array.make n (-1) in
  Array.iteri
    (fun i loop ->
      List.iter
        (fun l ->
          if loop.depth > depth_of.(l) then begin
            depth_of.(l) <- loop.depth;
            loop_of.(l) <- i
          end)
        loop.body)
    loops;
  {
    loops;
    depth_of;
    loop_of;
    reducible = irreducible_edges = [];
    irreducible_edges;
  }

let blocks_of t i = t.loops.(i).body
