(** Block reachability as an analysis pass — the single definition of a
    statically dead block, delegating to the canonical {!Ir.Cfg.reachable}
    (which the simplifier's unreachable sweep also uses).  The linter and
    the fuzzer cross-check both consume this pass. *)

open Ir

val blocks : Cfg.block array -> bool array
(** [Ir.Cfg.reachable]. *)

val func : Prog.func -> bool array

val unreachable : Prog.func -> Cfg.label list
(** Statically dead blocks, in label order. *)

val as_dataflow : Prog.func -> Dataflow.solution
(** Reachability phrased as the forward-Union dataflow instance over a
    one-bit universe: block [l] is reachable iff bit 0 is set in
    [out.(l)].  Exists to validate the framework against the canonical
    DFS (they must agree on every program). *)
