(* Cooper–Harvey–Kennedy dominators: number the graph in reverse
   postorder, then iterate "idom of v = intersection of its processed
   predecessors" to a fixpoint, where the intersection walks both
   candidates up the partial tree by RPO number.  Simple, allocation
   free after setup, and fast on CFG-sized graphs (the paper it comes
   from, "A Simple, Fast Dominance Algorithm", beats Lengauer-Tarjan up
   to tens of thousands of nodes). *)

open Ir

type t = { root : int; idom : int array; rpo : int array }

(* Generic core over an explicit graph. *)
let compute ~nnodes ~root ~succs ~preds =
  let rpo = Array.make nnodes (-1) in
  let order = Array.make nnodes (-1) in
  (* order: nodes in reverse postorder *)
  let visited = Array.make nnodes false in
  let next = ref nnodes in
  (* Iterative DFS computing postorder, then reversed by filling [order]
     from the back. *)
  let rec visit v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter visit (succs v);
      decr next;
      order.(!next) <- v
    end
  in
  visit root;
  let first = !next in
  (* Compact the visited prefix and number it. *)
  let reached = Array.sub order first (nnodes - first) in
  Array.iteri (fun k v -> rpo.(v) <- k) reached;
  let idom = Array.make nnodes (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo.(a) > rpo.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if rpo.(p) < 0 || idom.(p) < 0 then acc
                else match acc with
                  | None -> Some p
                  | Some a -> Some (intersect a p))
              None (preds v)
          in
          match new_idom with
          | Some d when idom.(v) <> d ->
            idom.(v) <- d;
            changed := true
          | _ -> ()
        end)
      reached
  done;
  { root; idom; rpo }

let dominators (f : Prog.func) : t =
  let blocks = f.Prog.blocks in
  let preds = Dataflow.cfg_preds blocks in
  compute ~nnodes:(Array.length blocks) ~root:0
    ~succs:(fun l -> Cfg.successors blocks.(l))
    ~preds:(fun l -> preds.(l))

(* Post-dominators: dominators of the reversed CFG rooted at a virtual
   exit that every Ret block flows to.  In the reversed graph the
   virtual exit's successors are the Ret blocks and each block's
   successors are its CFG predecessors. *)
let post_dominators (f : Prog.func) : t =
  let blocks = f.Prog.blocks in
  let n = Array.length blocks in
  let exit = n in
  let preds = Dataflow.cfg_preds blocks in
  let rets =
    List.filter
      (fun l ->
        match blocks.(l).Cfg.term with Cfg.Ret _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let rsuccs v = if v = exit then rets else preds.(v) in
  let rpreds v =
    if v = exit then []
    else
      let ps = Cfg.successors blocks.(v) in
      match blocks.(v).Cfg.term with
      | Cfg.Ret _ -> exit :: ps
      | _ -> ps
  in
  compute ~nnodes:(n + 1) ~root:exit ~succs:rsuccs ~preds:rpreds

let virtual_exit t =
  if t.root = Array.length t.idom - 1 && t.root <> 0 then Some t.root
  else None

let dominates t a b =
  if t.idom.(b) < 0 || t.idom.(a) < 0 then false
  else begin
    let rec walk v = v = a || (v <> t.root && walk t.idom.(v)) in
    walk b
  end

let dom_set t v =
  if t.idom.(v) < 0 then []
  else begin
    let rec up v acc =
      let acc = v :: acc in
      if v = t.root then acc else up t.idom.(v) acc
    in
    List.rev (up v [])
  end

let depth t v =
  if t.idom.(v) < 0 then -1
  else begin
    let rec up v acc = if v = t.root then acc else up t.idom.(v) (acc + 1) in
    up v 0
  end
