(** Compact mutable bitsets over a fixed universe [0 .. n-1], the value
    domain of the bit-vector dataflow framework.  All binary operations
    require both operands to share the same universe size. *)

type t

val create : int -> t
(** All-zeros set over a universe of the given size. *)

val universe : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val fill : t -> unit
(** Set every bit of the universe. *)

val copy : t -> t
val assign : dst:t -> t -> unit
val equal : t -> t -> bool
val is_empty : t -> bool
val count : t -> int

val union_into : dst:t -> t -> bool
(** [dst := dst ∪ src]; returns whether [dst] changed. *)

val inter_into : dst:t -> t -> bool
(** [dst := dst ∩ src]; returns whether [dst] changed. *)

val transfer : gen:t -> kill:t -> src:t -> dst:t -> bool
(** The dataflow transfer function [dst := gen ∪ (src \ kill)]; returns
    whether [dst] changed. *)

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val elements : t -> int list
