open Ir

type t = {
  live_in : Bitset.t array;
  live_out : Bitset.t array;
  use : Bitset.t array;
  def : Bitset.t array;
  iterations : int;
}

let operand_reg = function Insn.Reg r -> Some r | Insn.Imm _ -> None

(* Registers read by one instruction, in evaluation order. *)
let insn_reads = function
  | Insn.Mov (_, src) -> List.filter_map operand_reg [ src ]
  | Insn.Bin (_, _, a, b) -> List.filter_map operand_reg [ a; b ]
  | Insn.Load8 (_, base, off) | Insn.Load32 (_, base, off) ->
    List.filter_map operand_reg [ base; off ]
  | Insn.Store8 (base, off, v) | Insn.Store32 (base, off, v) ->
    List.filter_map operand_reg [ base; off; v ]
  | Insn.Intrin (_, _, args) -> List.filter_map operand_reg args

let insn_writes = function
  | Insn.Mov (d, _)
  | Insn.Bin (_, d, _, _)
  | Insn.Load8 (d, _, _)
  | Insn.Load32 (d, _, _) ->
    Some d
  | Insn.Store8 _ | Insn.Store32 _ -> None
  | Insn.Intrin (_, dst, _) -> dst

let term_reads = function
  | Cfg.Jump _ -> []
  | Cfg.Br (c, _, _) | Cfg.Switch (c, _, _) -> List.filter_map operand_reg [ c ]
  | Cfg.Ret o ->
    List.filter_map operand_reg (Option.to_list o)
  | Cfg.Call { args; _ } -> List.filter_map operand_reg args

let term_writes = function
  | Cfg.Call { dst; _ } -> dst
  | Cfg.Jump _ | Cfg.Br _ | Cfg.Switch _ | Cfg.Ret _ -> None

(* use = read before written within the block; def = written anywhere. *)
let use_def nregs (b : Cfg.block) =
  let use = Bitset.create nregs and def = Bitset.create nregs in
  let read r = if not (Bitset.mem def r) then Bitset.add use r in
  let write r = Bitset.add def r in
  Array.iter
    (fun insn ->
      List.iter read (insn_reads insn);
      Option.iter write (insn_writes insn))
    b.Cfg.insns;
  List.iter read (term_reads b.Cfg.term);
  Option.iter write (term_writes b.Cfg.term);
  (use, def)

let of_func (f : Prog.func) : t =
  let blocks = f.Prog.blocks in
  let n = Array.length blocks in
  let nregs = max 1 f.Prog.nregs in
  let pairs = Array.map (use_def nregs) blocks in
  let use = Array.map fst pairs and def = Array.map snd pairs in
  let preds = Dataflow.cfg_preds blocks in
  let exits =
    List.filter
      (fun l ->
        match blocks.(l).Cfg.term with Cfg.Ret _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let solution =
    Dataflow.solve
      {
        Dataflow.nnodes = n;
        nbits = nregs;
        succs = (fun l -> Cfg.successors blocks.(l));
        preds = (fun l -> preds.(l));
        gen = (fun l -> use.(l));
        kill = (fun l -> def.(l));
        direction = Dataflow.Backward;
        confluence = Dataflow.Union;
        boundary = exits;
        boundary_value = Bitset.create nregs;
      }
  in
  (* Backward problem: the solver's [in_] is the value entering the
     transfer in flow direction — the block's live-out — and [out] its
     live-in. *)
  {
    live_in = solution.Dataflow.out;
    live_out = solution.Dataflow.in_;
    use;
    def;
    iterations = solution.Dataflow.iterations;
  }

let dead_stores (f : Prog.func) (t : t) : (Cfg.label * Insn.reg) list =
  let acc = ref [] in
  Array.iteri
    (fun l (b : Cfg.block) ->
      (* Walk backwards: a write is dead when the register is not in the
         running live set; reads insert, writes remove. *)
      let live = Bitset.copy t.live_out.(l) in
      let step_writes w =
        Option.iter
          (fun r ->
            if not (Bitset.mem live r) then acc := (l, r) :: !acc;
            Bitset.remove live r)
          w
      in
      let step_reads rs = List.iter (Bitset.add live) rs in
      step_writes (term_writes b.Cfg.term);
      step_reads (term_reads b.Cfg.term);
      for k = Array.length b.Cfg.insns - 1 downto 0 do
        let insn = b.Cfg.insns.(k) in
        step_writes (insn_writes insn);
        step_reads (insn_reads insn)
      done)
    f.Prog.blocks;
  List.rev !acc
