(* Plain-text table rendering for experiment output. *)

type align = L | R

type t = {
  title : string;
  header : string list;
  align : align list;
  rows : string list list;
}

let make ~title ~header ?align rows =
  let align =
    match align with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.make: align/header length mismatch";
      a
    | None -> List.map (fun _ -> R) header
  in
  List.iteri
    (fun idx row ->
      if List.length row <> List.length header then
        invalid_arg
          (Printf.sprintf "Table.make: row %d has %d cells, expected %d" idx
             (List.length row) (List.length header)))
    rows;
  { title; header; align; rows }

let title t = t.title
let header t = t.header
let rows t = t.rows

let widths t =
  let ncols = List.length t.header in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun idx cell -> w.(idx) <- max w.(idx) (String.length cell)) row
  in
  feed t.header;
  List.iter feed t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | L -> s ^ String.make n ' '
    | R -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let line row =
    List.iteri
      (fun idx cell ->
        if idx > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.align idx) w.(idx) cell))
      row;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  line t.header;
  line (List.map (fun width -> String.make width '-') (Array.to_list w));
  List.iter line t.rows;
  Buffer.contents buf

let print t = print_string (render t)
