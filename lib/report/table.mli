(** Plain-text table rendering for experiment output. *)

type align = L | R

type t

val make :
  title:string ->
  header:string list ->
  ?align:align list ->
  string list list ->
  t
(** Raises [Invalid_argument] when a row's width disagrees with the
    header.  Default alignment is right for every column. *)

val title : t -> string

val header : t -> string list

val rows : t -> string list list
(** Structured accessors, for machine-readable exports that must carry
    exactly the cells the text rendering prints. *)

val render : t -> string
val print : t -> unit
