(** Wall-clock stage spans with Chrome trace-event export.

    Disabled by default; the disabled [with_] is a direct call to its
    argument behind one branch.  When enabled, completed spans carry the
    stage name, string attributes, nesting depth and completion order,
    and (when the metrics registry is also enabled) feed a per-stage
    duration histogram [span.<stage>.seconds]. *)

type event = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since spans were enabled/reset *)
  dur_us : float;
  depth : int;  (** nesting depth at entry; 0 = root *)
  seq : int;  (** completion order, starting at 1 *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : stage:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Run the thunk inside a span named [stage].  The span is recorded
    even when the thunk raises. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span on the calling
    domain, after the attrs passed to {!with_}.  No-op when disabled or
    when no span is open. *)

val collect : (unit -> 'a) -> 'a * event list
(** [collect f] runs [f] and additionally returns the spans completed
    by the calling domain during the call, oldest first.  Returns
    [(f (), [])] when disabled. *)

val set_cap : int option -> unit
(** Bound each domain's retained span count (for long-running
    processes): once a buffer exceeds twice the cap, the oldest spans
    are dropped down to the cap.  [None] (the default) retains
    everything. *)

val events : unit -> event list
(** Completed spans in completion order. *)

val reset : unit -> unit

val to_chrome_json : unit -> Json.t
(** Chrome trace-event format ("X" complete events, one pid/tid),
    loadable in chrome://tracing and Perfetto. *)

val write_chrome : string -> unit
