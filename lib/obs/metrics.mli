(** Typed metrics registry: counters, gauges and quantile histograms.

    Registration is idempotent per (name, kind); a cross-kind name
    collision raises [Invalid_argument].  All mutation operations are
    no-ops while the registry is disabled (the default), so a disabled
    instrument costs one load and branch.

    Histograms bucket observations into fixed log-scale bins
    (quarter-powers of two spanning 2^-40 .. 2^40 plus an overflow
    bucket), which makes {!hist_quantile} deterministic: the estimate
    is a pure function of the observed multiset, independent of
    observation order or domain scheduling, with relative error bounded
    by the bucket ratio 2^(1/4) (~19%).

    Empty-histogram semantics: with zero observations, {!hist_sum},
    {!hist_min}, {!hist_max}, {!hist_mean} and {!hist_quantile} all
    return [0.] — never infinity or NaN — and the text dump and JSON
    export render zeros for the same fields. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val value : counter -> int

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val hist_mean : histogram -> float

val hist_quantile : histogram -> float -> float
(** [hist_quantile h p] estimates the [p]-quantile ([p] clamped to
    [0,1]) as the upper boundary of the log-scale bucket containing
    rank [ceil (p * n)], clamped into [[hist_min h, hist_max h]].
    Returns [0.] on an empty histogram. *)

val reset : unit -> unit
(** Zero every registered value (bucket arrays included);
    registrations survive. *)

val clear : unit -> unit
(** Forget every registration (test isolation). *)

val dump : unit -> string
(** Deterministic text report, one line per metric, names sorted.
    Histogram lines include p50/p90/p99 from {!hist_quantile}. *)

val to_json : unit -> Json.t
(** The registry as an [impact.metrics/v1] document: metrics sorted by
    name; histogram entries carry n/sum/min/mean/max/p50/p90/p99 (all
    zero when empty). *)

val write : string -> unit
(** Write {!dump} to a file, or to stderr when the path is ["-"]. *)
