(** Typed metrics registry: counters, gauges and summary histograms.

    Registration is idempotent per (name, kind); a cross-kind name
    collision raises [Invalid_argument].  All mutation operations are
    no-ops while the registry is disabled (the default), so a disabled
    instrument costs one load and branch. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val value : counter -> int

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val hist_mean : histogram -> float

val reset : unit -> unit
(** Zero every registered value; registrations survive. *)

val clear : unit -> unit
(** Forget every registration (test isolation). *)

val dump : unit -> string
(** Deterministic text report, one line per metric, names sorted. *)

val write : string -> unit
(** Write {!dump} to a file, or to stderr when the path is ["-"]. *)
