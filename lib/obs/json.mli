(** Minimal JSON tree with an RFC 8259 emitter and a strict parser —
    just enough for the telemetry artifacts (Chrome traces, table-row
    reports, bench reports) and the tests that validate them, with no
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

val to_file : string -> t -> unit
(** Write to [path] (truncating), with a trailing newline. *)

exception Parse_error of string

val default_max_depth : int
(** Default nesting-depth limit of the parser (512). *)

val parse_exn : ?max_depth:int -> ?max_bytes:int -> string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage.

    Hardened against adversarial input: nesting deeper than [max_depth]
    (default {!default_max_depth}) fails instead of risking a stack
    overflow, and — when [max_bytes] is given — input longer than that
    fails before any parsing work. *)

val parse : ?max_depth:int -> ?max_bytes:int -> string -> (t, string) result
val of_file : string -> (t, string) result

val member : string -> t -> t option
(** Field of an [Obj]; [None] for other constructors or missing keys. *)

val to_list : t -> t list option
