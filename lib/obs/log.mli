(** One log sink for progress/warning chatter.

    The default sink writes to stderr (stdout stays a pure table
    stream).  [set_quiet true] suppresses [Info] and [Warn]; [Error]
    always reaches the sink.  The [_raw] entry points emit preformatted
    messages (e.g. [Ir.Diag.to_string]) without adding a prefix. *)

type level = Info | Warn | Error
type sink = level -> string -> unit

val set_sink : sink -> unit
val reset_sink : unit -> unit
val set_quiet : bool -> unit
val quiet : unit -> bool

val info : ('a, unit, string, unit) format4 -> 'a
(** No prefix; suppressed under quiet. *)

val warn : ('a, unit, string, unit) format4 -> 'a
(** Prefixed "[warning] "; suppressed under quiet. *)

val error : ('a, unit, string, unit) format4 -> 'a
(** Prefixed "[error] "; never suppressed. *)

val warn_raw : string -> unit
val error_raw : string -> unit
