(* Minimal JSON tree, emitter and parser.

   The telemetry layer emits three machine-readable artifacts (Chrome
   trace events, table-row reports, bench reports); keeping the JSON
   support in-tree avoids an external dependency and gives the test
   suite a parser to validate that every emitted file is well formed.
   The emitter escapes per RFC 8259; non-finite floats become [null]
   (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

(* ---------- parsing ---------- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

(* Adversarial-input guards.  The parser recurses once per nesting
   level, so untrusted input could otherwise drive an unbounded stack
   (a "depth bomb" of [[[[...) or an unbounded amount of work (an
   oversized payload); both now fail as ordinary parse errors before
   any damage.  The defaults are far above anything the telemetry
   artifacts produce. *)
let default_max_depth = 512

let parse_exn ?(max_depth = default_max_depth) ?max_bytes (s : string) : t =
  let n = String.length s in
  (match max_bytes with
  | Some limit when n > limit ->
    raise
      (Parse_error
         (Printf.sprintf "input too large: %d bytes (limit %d)" n limit))
  | _ -> ());
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail !pos "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail !pos "bad \\u escape"
               in
               (* ASCII range decodes exactly; anything wider is replaced
                  (the emitter only produces \u for control chars). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?';
               pos := !pos + 4
             | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then
      fail !pos (Printf.sprintf "nesting deeper than %d" max_depth);
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse ?max_depth ?max_bytes s =
  try Ok (parse_exn ?max_depth ?max_bytes s) with Parse_error msg -> Error msg

let of_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

(* ---------- accessors (for tests and validators) ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
