(** Wall clock shared by spans, the experiment runner and the bench
    harness. *)

val now : unit -> float
(** Seconds since the epoch, microsecond resolution. *)
