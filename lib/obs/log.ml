(* One log sink for the progress/warning chatter around the pipeline.

   Severity prefixes match [Ir.Diag]'s rendering ("[warning ...]",
   "[error ...]"); preformatted diagnostics go through the [_raw]
   entry points unchanged so they are not double-prefixed.  The default
   sink writes to stderr, keeping stdout a pure table/report stream;
   [set_quiet true] (the CLI's --quiet) drops [Info] and [Warn] while
   [Error] always gets through.

   A mutex serializes sink invocations, so messages emitted from
   concurrent domains (e.g. a degradation warning surfacing inside a
   parallel table build) arrive whole instead of interleaved. *)

type level = Info | Warn | Error

type sink = level -> string -> unit

let default_sink _level msg =
  prerr_string msg;
  prerr_newline ();
  flush stderr

let the_sink = ref default_sink
let quiet_flag = ref false
let mutex = Mutex.create ()

let set_sink s = the_sink := s
let reset_sink () = the_sink := default_sink
let set_quiet b = quiet_flag := b
let quiet () = !quiet_flag

let serialized sink level msg =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) (fun () -> sink level msg)

let emit level msg =
  match level with
  | Error -> serialized !the_sink Error msg
  | Info | Warn -> if not !quiet_flag then serialized !the_sink level msg

let info fmt = Printf.ksprintf (emit Info) fmt
let warn fmt = Printf.ksprintf (fun m -> emit Warn ("[warning] " ^ m)) fmt
let error fmt = Printf.ksprintf (fun m -> emit Error ("[error] " ^ m)) fmt

let warn_raw msg = emit Warn msg
let error_raw msg = emit Error msg
