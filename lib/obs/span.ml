(* Wall-clock stage spans.

   [with_ ~stage f] times [f] and records a completed span carrying the
   stage name, string attributes, nesting depth and completion sequence
   number.  Recording is disabled by default; the disabled path is one
   load and branch around a direct call to [f], so instrumented code
   pays nothing until a consumer opts in (--trace-out, bench).

   Domain safety: every domain records into its own buffer
   (domain-local storage), so the hot path takes no lock — nesting
   depth is domain-local state and appending an event touches only the
   recording domain's list.  Buffers are registered in a global list
   under a mutex the first time a domain records, and they outlive
   their domain, so [events]/[to_chrome_json] can stitch every domain's
   spans back together after a parallel section.  The completion
   sequence number is a global atomic, giving one total completion
   order across domains; on a single domain the numbering is identical
   to the pre-parallel implementation, which keeps the serial path byte
   for byte.

   Completed spans export as Chrome trace-event JSON ("X" complete
   events; each domain's buffer becomes its own tid lane, the main
   domain keeping the historical tid 1), loadable in chrome://tracing
   and Perfetto: nesting is implied by interval containment within a
   lane.  When the metrics registry is enabled, every completed span
   also feeds a per-stage duration histogram ([span.<stage>.seconds]),
   so the metrics dump shows where the time of a run went without a
   trace viewer.

   The clock is [Unix.gettimeofday] — the portable best effort without
   adding a C stub; timestamps are stored relative to the first enable
   so trace viewers start near zero. *)

type event = {
  name : string;
  attrs : (string * string) list;
  start_us : float; (* relative to [epoch_us] *)
  dur_us : float;
  depth : int; (* nesting depth at entry; 0 = root *)
  seq : int; (* completion order, starting at 1 *)
}

(* Per-domain recording buffer; registered once, survives the domain. *)
type buffer = {
  tid : int; (* Chrome trace lane; 1 = the first recording domain *)
  mutable b_depth : int;
  mutable b_events : event list; (* newest first *)
  mutable b_count : int; (* List.length b_events, kept for the cap *)
  mutable b_open : (string * string) list ref list;
      (* attr accumulators of the open spans, innermost first *)
}

let on = Atomic.make false
let epoch_us = ref 0. (* written only while single-domain *)
let next_seq = Atomic.make 0

let reg_mutex = Mutex.create ()
let buffers : buffer list ref = ref [] (* registration order *)
let next_tid = ref 1 (* under [reg_mutex] *)

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock reg_mutex;
      let b =
        { tid = !next_tid; b_depth = 0; b_events = []; b_count = 0; b_open = [] }
      in
      incr next_tid;
      buffers := !buffers @ [ b ];
      Mutex.unlock reg_mutex;
      b)

(* Optional per-buffer retention cap for long-running processes (the
   soak harness): when a buffer holds more than twice the cap, drop the
   oldest events down to the cap.  Amortised O(1) per record; the
   newest [cap] spans are always retained. *)
let cap = Atomic.make (None : int option)
let set_cap c = Atomic.set cap c

let truncate_to n evs =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: tl -> e :: take (k - 1) tl
  in
  take n evs

let apply_cap b =
  match Atomic.get cap with
  | Some c when b.b_count > 2 * c ->
    b.b_events <- truncate_to c b.b_events;
    b.b_count <- c
  | _ -> ()

let now_us () = Clock.now () *. 1e6

let set_enabled b =
  if b && not (Atomic.get on) then epoch_us := now_us ();
  Atomic.set on b

let enabled () = Atomic.get on

let reset () =
  Mutex.lock reg_mutex;
  List.iter
    (fun b ->
      b.b_depth <- 0;
      b.b_events <- [];
      b.b_count <- 0;
      b.b_open <- [])
    !buffers;
  Mutex.unlock reg_mutex;
  Atomic.set next_seq 0;
  epoch_us := now_us ()

let events () =
  Mutex.lock reg_mutex;
  let evs = List.concat_map (fun b -> b.b_events) !buffers in
  Mutex.unlock reg_mutex;
  List.sort (fun a b -> compare a.seq b.seq) evs

let with_ ~stage ?(attrs = []) f =
  if not (Atomic.get on) then f ()
  else begin
    let b = Domain.DLS.get buffer_key in
    let d = b.b_depth in
    b.b_depth <- d + 1;
    let extra = ref [] in
    b.b_open <- extra :: b.b_open;
    let t0 = now_us () in
    let record () =
      let t1 = now_us () in
      b.b_depth <- d;
      (match b.b_open with _ :: tl -> b.b_open <- tl | [] -> ());
      let seq = 1 + Atomic.fetch_and_add next_seq 1 in
      b.b_events <-
        {
          name = stage;
          attrs = attrs @ List.rev !extra;
          start_us = t0 -. !epoch_us;
          dur_us = t1 -. t0;
          depth = d;
          seq;
        }
        :: b.b_events;
      b.b_count <- b.b_count + 1;
      apply_cap b;
      if Metrics.enabled () then
        Metrics.observe
          (Metrics.histogram ("span." ^ stage ^ ".seconds"))
          ((t1 -. t0) /. 1e6)
    in
    Fun.protect ~finally:record f
  end

let add_attr k v =
  if Atomic.get on then
    let b = Domain.DLS.get buffer_key in
    match b.b_open with
    | extra :: _ -> extra := (k, v) :: !extra
    | [] -> () (* no open span on this domain: attribute dropped *)

let collect f =
  if not (Atomic.get on) then (f (), [])
  else begin
    let b = Domain.DLS.get buffer_key in
    let before = b.b_events in
    let r = f () in
    (* Walk the (newest-first) list down to the old head; physical
       equality is exact because recording only conses.  If the cap
       dropped the old head we collect everything still retained. *)
    let rec fresh acc evs =
      if evs == before then acc
      else match evs with [] -> acc | e :: tl -> fresh (e :: acc) tl
    in
    (r, fresh [] b.b_events)
  end

(* ---------- Chrome trace-event export ---------- *)

let chrome_event ~tid e =
  let args =
    List.map (fun (k, v) -> (k, Json.String v)) e.attrs
    @ [ ("depth", Json.Int e.depth); ("seq", Json.Int e.seq) ]
  in
  Json.Obj
    [
      ("name", Json.String e.name);
      ("cat", Json.String "impact");
      ("ph", Json.String "X");
      ("ts", Json.Float e.start_us);
      ("dur", Json.Float e.dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let to_chrome_json () =
  (* Start-time order; on a timestamp tie (sub-µs nesting) the parent
     goes first so viewers nest the slices correctly within a lane. *)
  Mutex.lock reg_mutex;
  let tagged =
    List.concat_map
      (fun b -> List.map (fun e -> (b.tid, e)) b.b_events)
      !buffers
  in
  Mutex.unlock reg_mutex;
  let sorted =
    List.sort
      (fun (_, a) (_, b) ->
        match compare a.start_us b.start_us with
        | 0 -> compare a.depth b.depth
        | c -> c)
      tagged
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map (fun (tid, e) -> chrome_event ~tid e) sorted) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path = Json.to_file path (to_chrome_json ())
