(* Wall-clock stage spans.

   [with_ ~stage f] times [f] and records a completed span carrying the
   stage name, string attributes, nesting depth and completion sequence
   number.  Recording is disabled by default; the disabled path is one
   load and branch around a direct call to [f], so instrumented code
   pays nothing until a consumer opts in (--trace-out, bench).

   Completed spans export as Chrome trace-event JSON ("X" complete
   events on one pid/tid), loadable in chrome://tracing and Perfetto:
   nesting is implied by interval containment.  When the metrics
   registry is enabled, every completed span also feeds a per-stage
   duration histogram ([span.<stage>.seconds]), so the metrics dump
   shows where the time of a run went without a trace viewer.

   The clock is [Unix.gettimeofday] — the portable best effort without
   adding a C stub; timestamps are stored relative to the first enable
   so trace viewers start near zero. *)

type event = {
  name : string;
  attrs : (string * string) list;
  start_us : float; (* relative to [epoch_us] *)
  dur_us : float;
  depth : int; (* nesting depth at entry; 0 = root *)
  seq : int; (* completion order, starting at 1 *)
}

let on = ref false
let epoch_us = ref 0.
let depth = ref 0
let next_seq = ref 0
let events_rev : event list ref = ref []

let now_us () = Clock.now () *. 1e6

let set_enabled b =
  if b && not !on then epoch_us := now_us ();
  on := b

let enabled () = !on

let reset () =
  depth := 0;
  next_seq := 0;
  events_rev := [];
  epoch_us := now_us ()

let events () = List.rev !events_rev

let with_ ~stage ?(attrs = []) f =
  if not !on then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = now_us () in
    let record () =
      let t1 = now_us () in
      depth := d;
      incr next_seq;
      events_rev :=
        {
          name = stage;
          attrs;
          start_us = t0 -. !epoch_us;
          dur_us = t1 -. t0;
          depth = d;
          seq = !next_seq;
        }
        :: !events_rev;
      if Metrics.enabled () then
        Metrics.observe
          (Metrics.histogram ("span." ^ stage ^ ".seconds"))
          ((t1 -. t0) /. 1e6)
    in
    Fun.protect ~finally:record f
  end

(* ---------- Chrome trace-event export ---------- *)

let chrome_event e =
  let args =
    List.map (fun (k, v) -> (k, Json.String v)) e.attrs
    @ [ ("depth", Json.Int e.depth); ("seq", Json.Int e.seq) ]
  in
  Json.Obj
    [
      ("name", Json.String e.name);
      ("cat", Json.String "impact");
      ("ph", Json.String "X");
      ("ts", Json.Float e.start_us);
      ("dur", Json.Float e.dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj args);
    ]

let to_chrome_json () =
  (* Start-time order; on a timestamp tie (sub-µs nesting) the parent
     goes first so viewers nest the slices correctly. *)
  let sorted =
    List.sort
      (fun a b ->
        match compare a.start_us b.start_us with
        | 0 -> compare a.depth b.depth
        | c -> c)
      (events ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event sorted));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path = Json.to_file path (to_chrome_json ())
