(* Typed metrics registry: counters, gauges and quantile histograms.

   Instruments register a metric once (usually at module-init time) and
   bump it from hot code; [incr]/[set]/[observe] are no-ops while the
   registry is disabled, so the cost of a disabled instrument is one
   load and branch.  Registration is idempotent per (name, kind) —
   asking for the same counter twice returns the same instance — and a
   name collision across kinds is a programming error and raises.

   Histograms keep, besides count/sum/min/max, a fixed array of
   log-scale bucket counters (quarter-powers of two from 2^-40 to
   2^40, one underflow and one overflow bucket).  Because the bucket
   boundaries are fixed and counting commutes, the quantile estimate is
   fully deterministic: it depends only on the multiset of observed
   values, never on observation order, domain scheduling or sampling.
   A quantile answer is the upper boundary of the bucket holding the
   requested rank, clamped into [min, max], so its relative error is
   bounded by the bucket ratio 2^(1/4) ≈ 19%.

   Empty-histogram semantics (defined, tested, and relied on by the
   serve replay determinism contract): with zero observations every
   derived statistic — sum, min, max, mean and every quantile — is 0.
   Neither the text dump nor the JSON export ever contains infinity or
   NaN.

   Domain safety: counters are atomics (the hot path stays lock-free —
   one fetch-and-add per bump); gauges, histograms and the registry
   table share one mutex, which is fine because lookups after module
   init are rare (per-configuration sim counters) and observations are
   per-span or per-request, not per-access.  Increments from concurrent
   domains commute, so totals are independent of scheduling and
   parallel runs report the same counts as serial ones.

   [dump] renders a deterministic text report (names sorted), written by
   the CLI behind [--metrics-out]; [to_json] renders the same registry
   as an `impact.metrics/v1` document. *)

type counter = { c_name : string; c_help : string; count : int Atomic.t }
type gauge = { g_name : string; g_help : string; mutable value : float }

(* ---- log-scale bucket geometry (shared by every histogram) ---- *)

(* Boundaries 2^(k/4) for k in [-160, 160]: 321 boundaries covering
   ~9.1e-13 .. ~1.1e12, plus one overflow bucket.  Bucket i holds
   values v with bounds.(i-1) < v <= bounds.(i); bucket 0 also absorbs
   everything at or below the lowest boundary. *)
let bucket_subdiv = 4
let bucket_lg_min = -40
let bucket_lg_max = 40

let bounds =
  Array.init
    (((bucket_lg_max - bucket_lg_min) * bucket_subdiv) + 1)
    (fun i ->
      Float.pow 2.
        (float_of_int ((bucket_lg_min * bucket_subdiv) + i)
        /. float_of_int bucket_subdiv))

let nbounds = Array.length bounds
let nbuckets = nbounds + 1 (* + overflow *)

(* Smallest i with v <= bounds.(i); [nbounds] (overflow) if none.
   Binary search keeps the answer exact at the boundaries — no floating
   log round-off — so the same value always lands in the same bucket. *)
let bucket_index v =
  if v <= bounds.(0) then 0
  else if v > bounds.(nbounds - 1) then nbounds
  else begin
    let lo = ref 0 and hi = ref (nbounds - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

type histogram = {
  h_name : string;
  h_help : string;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let mutex = Mutex.create ()
let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make_new match_existing =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | None ->
    let m = make_new () in
    Hashtbl.add registry name m;
    m
  | Some m -> (
    match match_existing m with
    | Some _ -> m
    | None ->
      invalid_arg
        (Printf.sprintf
           "Obs.Metrics: %S is already registered as a %s" name
           (kind_name m)))

let counter ?(help = "") name =
  match
    register name
      (fun () -> C { c_name = name; c_help = help; count = Atomic.make 0 })
      (function C _ as m -> Some m | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge ?(help = "") name =
  match
    register name
      (fun () -> G { g_name = name; g_help = help; value = 0. })
      (function G _ as m -> Some m | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let histogram ?(help = "") name =
  match
    register name
      (fun () ->
        H
          {
            h_name = name;
            h_help = help;
            n = 0;
            sum = 0.;
            vmin = infinity;
            vmax = neg_infinity;
            buckets = Array.make nbuckets 0;
          })
      (function H _ as m -> Some m | _ -> None)
  with
  | H h -> h
  | _ -> assert false

let incr ?(by = 1) c =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.count by)

let value c = Atomic.get c.count

let set g v = if Atomic.get on then locked (fun () -> g.value <- v)
let gauge_value g = g.value

let observe h v =
  if Atomic.get on then
    locked @@ fun () ->
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = if Float.is_finite v then bucket_index v else nbuckets - 1 in
    h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.n
let hist_sum h = if h.n = 0 then 0. else h.sum
let hist_min h = if h.n = 0 then 0. else h.vmin
let hist_max h = if h.n = 0 then 0. else h.vmax
let hist_mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

(* Deterministic rank-based estimate: the value at rank ceil(p * n)
   (1-based) is inside the first bucket whose cumulative count reaches
   the rank; answer that bucket's upper boundary clamped into
   [min, max].  No interpolation, no sampling — the answer is a pure
   function of the observed multiset. *)
let hist_quantile h p =
  if h.n = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let rank =
      Stdlib.max 1
        (Stdlib.min h.n (int_of_float (Float.ceil (p *. float_of_int h.n))))
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < nbuckets do
      cum := !cum + h.buckets.(!i);
      if !cum < rank then i := !i + 1
    done;
    let est = if !i >= nbounds then h.vmax else bounds.(!i) in
    Float.min h.vmax (Float.max h.vmin est)
  end

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.count 0
      | G g -> g.value <- 0.
      | H h ->
        h.n <- 0;
        h.sum <- 0.;
        h.vmin <- infinity;
        h.vmax <- neg_infinity;
        Array.fill h.buckets 0 nbuckets 0)
    registry

(* Test helper: forget every registration (module-level instruments keep
   working but re-register lazily on next lookup by other callers). *)
let clear () = locked (fun () -> Hashtbl.reset registry)

let sorted_entries () =
  let entries =
    locked (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let dump () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# obs metrics (deterministic order)\n";
  List.iter
    (fun (name, m) ->
      (match m with
      | C c ->
        Buffer.add_string buf
          (Printf.sprintf "counter    %-52s %d\n" name (Atomic.get c.count))
      | G g ->
        Buffer.add_string buf
          (Printf.sprintf "gauge      %-52s %g\n" name g.value)
      | H h ->
        Buffer.add_string buf
          (Printf.sprintf
             "histogram  %-52s n=%d sum=%.6f min=%.6f mean=%.6f max=%.6f \
              p50=%.6f p90=%.6f p99=%.6f\n"
             name h.n (hist_sum h) (hist_min h) (hist_mean h) (hist_max h)
             (hist_quantile h 0.50) (hist_quantile h 0.90)
             (hist_quantile h 0.99)));
      match m with
      | C { c_help = ""; _ } | G { g_help = ""; _ } | H { h_help = ""; _ } ->
        ()
      | C { c_help = help; _ } | G { g_help = help; _ } | H { h_help = help; _ }
        ->
        Buffer.add_string buf (Printf.sprintf "#          ^ %s\n" help))
    (sorted_entries ());
  Buffer.contents buf

let metric_json name m =
  let base kind = [ ("name", Json.String name); ("kind", Json.String kind) ] in
  match m with
  | C c -> Json.Obj (base "counter" @ [ ("value", Json.Int (Atomic.get c.count)) ])
  | G g -> Json.Obj (base "gauge" @ [ ("value", Json.Float g.value) ])
  | H h ->
    Json.Obj
      (base "histogram"
      @ [
          ("n", Json.Int h.n);
          ("sum", Json.Float (hist_sum h));
          ("min", Json.Float (hist_min h));
          ("mean", Json.Float (hist_mean h));
          ("max", Json.Float (hist_max h));
          ("p50", Json.Float (hist_quantile h 0.50));
          ("p90", Json.Float (hist_quantile h 0.90));
          ("p99", Json.Float (hist_quantile h 0.99));
        ])

let to_json () =
  Json.Obj
    [
      ("schema", Json.String "impact.metrics/v1");
      ( "metrics",
        Json.List (List.map (fun (n, m) -> metric_json n m) (sorted_entries ()))
      );
    ]

let write path =
  if path = "-" then prerr_string (dump ())
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (dump ()))
  end
