(* Typed metrics registry: counters, gauges and summary histograms.

   Instruments register a metric once (usually at module-init time) and
   bump it from hot code; [incr]/[set]/[observe] are no-ops while the
   registry is disabled, so the cost of a disabled instrument is one
   load and branch.  Registration is idempotent per (name, kind) —
   asking for the same counter twice returns the same instance — and a
   name collision across kinds is a programming error and raises.

   Domain safety: counters are atomics (the hot path stays lock-free —
   one fetch-and-add per bump); gauges, histograms and the registry
   table share one mutex, which is fine because lookups after module
   init are rare (per-configuration sim counters) and observations are
   per-span, not per-access.  Increments from concurrent domains
   commute, so totals are independent of scheduling and parallel runs
   report the same counts as serial ones.

   [dump] renders a deterministic text report (names sorted), written by
   the CLI behind [--metrics-out]. *)

type counter = { c_name : string; c_help : string; count : int Atomic.t }
type gauge = { g_name : string; g_help : string; mutable value : float }

type histogram = {
  h_name : string;
  h_help : string;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let mutex = Mutex.create ()
let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make_new match_existing =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | None ->
    let m = make_new () in
    Hashtbl.add registry name m;
    m
  | Some m -> (
    match match_existing m with
    | Some _ -> m
    | None ->
      invalid_arg
        (Printf.sprintf
           "Obs.Metrics: %S is already registered as a %s" name
           (kind_name m)))

let counter ?(help = "") name =
  match
    register name
      (fun () -> C { c_name = name; c_help = help; count = Atomic.make 0 })
      (function C _ as m -> Some m | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge ?(help = "") name =
  match
    register name
      (fun () -> G { g_name = name; g_help = help; value = 0. })
      (function G _ as m -> Some m | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let histogram ?(help = "") name =
  match
    register name
      (fun () ->
        H
          {
            h_name = name;
            h_help = help;
            n = 0;
            sum = 0.;
            vmin = infinity;
            vmax = neg_infinity;
          })
      (function H _ as m -> Some m | _ -> None)
  with
  | H h -> h
  | _ -> assert false

let incr ?(by = 1) c =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.count by)

let value c = Atomic.get c.count

let set g v = if Atomic.get on then locked (fun () -> g.value <- v)
let gauge_value g = g.value

let observe h v =
  if Atomic.get on then
    locked @@ fun () ->
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v

let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = if h.n = 0 then 0. else h.vmin
let hist_max h = if h.n = 0 then 0. else h.vmax
let hist_mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.count 0
      | G g -> g.value <- 0.
      | H h ->
        h.n <- 0;
        h.sum <- 0.;
        h.vmin <- infinity;
        h.vmax <- neg_infinity)
    registry

(* Test helper: forget every registration (module-level instruments keep
   working but re-register lazily on next lookup by other callers). *)
let clear () = locked (fun () -> Hashtbl.reset registry)

let dump () =
  let entries =
    locked (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> compare a b) entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# obs metrics (deterministic order)\n";
  List.iter
    (fun (name, m) ->
      (match m with
      | C c ->
        Buffer.add_string buf
          (Printf.sprintf "counter    %-52s %d\n" name (Atomic.get c.count))
      | G g ->
        Buffer.add_string buf
          (Printf.sprintf "gauge      %-52s %g\n" name g.value)
      | H h ->
        Buffer.add_string buf
          (Printf.sprintf
             "histogram  %-52s n=%d sum=%.6f min=%.6f mean=%.6f max=%.6f\n"
             name h.n (hist_sum h) (hist_min h) (hist_mean h) (hist_max h)));
      match m with
      | C { c_help = ""; _ } | G { g_help = ""; _ } | H { h_help = ""; _ } ->
        ()
      | C { c_help = help; _ } | G { g_help = help; _ } | H { h_help = help; _ }
        ->
        Buffer.add_string buf (Printf.sprintf "#          ^ %s\n" help))
    entries;
  Buffer.contents buf

let write path =
  if path = "-" then prerr_string (dump ())
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (dump ()))
  end
