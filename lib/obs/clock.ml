(* Wall clock for coarse stage timing (seconds).  One definition so the
   span layer, the experiment runner and the bench harness agree on the
   time source. *)

let now () = Unix.gettimeofday ()
