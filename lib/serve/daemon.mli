(** The fault-tolerant layout-service daemon.

    Newline-delimited `impact.serve/v1` JSON requests in, one response
    per request out, in input order.  Per-request isolation (any failure
    becomes a structured error response carrying the CLI exit-code
    taxonomy), per-request deadlines with typed timeout responses,
    bounded request size, bounded profile/memo/map growth with LRU
    eviction, and graceful degradation tiers.

    Read-only requests are dispatched in constant-width batches across
    the default {!Placement.Pool}; profile-upload, stats and shutdown
    are serial barriers.  Responses carry no wall-clock values and are
    emitted in input order, so `-j 1` and `-j N` runs of the same
    request stream are byte-identical. *)

type config = {
  deadline_ms : int;  (** default per-request deadline *)
  cheap_threshold_ms : int;
      (** deadlines at or below this admit only the cheapest strategy *)
  retry_base_ms : int;  (** floor of the [retry_after_ms] hint *)
  max_request_bytes : int;
  max_batch : int;  (** pool batch width — constant, not lane-dependent *)
  profile_cap : int option;  (** LRU bound on named profiles *)
  epoch_window : int;  (** live epochs per profile *)
  memo_cap : int option;  (** per-bench simulation-memo LRU bound *)
  strategy_cap : int option;  (** per-bench strategy-map LRU bound *)
  map_cap : int;  (** custom-profile address-map LRU bound *)
  scale : int;  (** workload scale of the resident contexts *)
  benches : string list option;  (** [None] = the full suite *)
  extra_strategies : Placement.Strategy.t list;
      (** extra registry entries, resolved before the global registry —
          how the chaos harness injects a raising strategy *)
  slow_ms : int option;
      (** requests slower than this dump their span tree to the log
          (requires spans enabled); [None] disables the slow log *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Build the resident state: one {!Experiments.Context} entry per
    benchmark (pipelines and traces still lazy), an empty profile
    store, an empty map cache. *)

val context : t -> Experiments.Context.t
val store : t -> Store.t

val handle_line : t -> string -> Obs.Json.t * bool
(** The serial total function: one request line in, one response out,
    never raises.  The boolean is [true] when the line was a shutdown
    request.  The chaos harness and unit tests drive this directly.
    Staleness notifications are a serve-loop concept: an upload handled
    here drops its pending notification without emitting it or
    consuming the exactly-once guard. *)

val run_lines : t -> string list -> Obs.Json.t list
(** Run a request stream through the full batched serve loop (the same
    code path as {!serve_channels}) and return the emitted lines —
    responses in input order, with any staleness notifications
    interleaved right after the upload that caused them.  Stops early
    at a shutdown request; lines past it get no response. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve until EOF or a shutdown request; each response line is
    flushed as emitted.  Lines are read through a bounded reader, so an
    over-long request costs its length in I/O but not in memory. *)

val serve_socket : t -> path:string -> unit
(** Listen on a Unix socket, serving connections sequentially until a
    shutdown request arrives.  A client disconnecting mid-stream ends
    that connection only.  The socket file is removed on exit. *)

val stopped : t -> bool

(** {2 Telemetry} *)

val requests_total : Obs.Metrics.counter
val errors_total : Obs.Metrics.counter
val timeouts_total : Obs.Metrics.counter
val degraded_total : Obs.Metrics.counter

val map_evictions : Obs.Metrics.counter
(** Custom-profile address maps dropped by the LRU cap. *)

val notifications_total : Obs.Metrics.counter
(** Push staleness notifications emitted to subscribers. *)

val latency_hist : string -> Obs.Metrics.histogram
(** Per-request-type wall-clock latency histogram
    [serve.latency.<type>.seconds]; ["all"] aggregates every type. *)
