(* Wire protocol of the layout service: `impact.serve/v1`.

   One JSON object per line in both directions.  Every parse failure is
   typed — the daemon turns it into a structured error response rather
   than dying — and every client mistake carries the PR 3 exit-code
   taxonomy ([Ir.Diag.exit_code]: usage errors 2, pipeline stages
   10..17, the linter 18) so scripted clients can dispatch on the same
   codes the CLI exits with.  Unexpected server-side exceptions are
   reported as stage ["internal"] with code 1 — a bug report, not a
   client error. *)

let schema = "impact.serve/v1"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type upload = {
  profile : string;  (* profile-store name the counts merge into *)
  bench : string;  (* benchmark whose (inlined) program the ids index *)
  epoch : int option;  (* client generation; None = the store's current *)
  weight : float;  (* multiplier applied to every count of this upload *)
  blocks : (int * int * float) list;  (* fid, label, count *)
  arcs : (int * int * int * float) list;  (* fid, src, dst, count *)
  entries : (int * float) list;  (* fid, invocation count *)
  calls : (int * int * int * float) list;  (* caller, block, callee, count *)
}

type request =
  | Layout_request of {
      bench : string;
      strategy : string;
      config : Icache.Config.t;
      profile : string option;  (* layout from a named merged profile *)
      deadline_ms : int option;
    }
  | Profile_upload of upload
  | Lint_request of {
      bench : string;
      strategy : string;
      min_prob : float option;
    }
  | Stats
  | Subscribe of { profiles : string list option }
      (* push staleness notifications; None = every profile *)
  | Health
  | Shutdown

type parsed = { id : Obs.Json.t; req : request }

(* Structured failure: [stage]/[code] follow the CLI taxonomy. *)
type error_info = { stage : string; code : int; message : string }

let usage_error message = { stage = "usage"; code = 2; message }

let internal_error message = { stage = "internal"; code = 1; message }

let error_of_diag (d : Ir.Diag.t) =
  {
    stage = Ir.Diag.stage_name d.Ir.Diag.stage;
    code = Ir.Diag.exit_code d;
    message = Ir.Diag.to_string d;
  }

let error_of_exn = function
  | Ir.Diag.Fail d -> error_of_diag d
  | Workloads.Registry.Unknown_benchmark name ->
    usage_error (Printf.sprintf "unknown benchmark: %s" name)
  | Placement.Strategy.Unknown_strategy id ->
    usage_error (Printf.sprintf "unknown strategy: %s" id)
  | Icache.Config.Invalid msg ->
    usage_error (Printf.sprintf "invalid cache config: %s" msg)
  | Failure msg -> usage_error msg
  | exn -> internal_error (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad of error_info

let bad fmt = Fmt.kstr (fun m -> raise (Bad (usage_error m))) fmt

let member key json = Obs.Json.member key json

let get_string ~what = function
  | Some (Obs.Json.String s) -> s
  | Some _ -> bad "%s must be a string" what
  | None -> bad "missing field %S" what

let get_opt_string ~what = function
  | Some (Obs.Json.String s) -> Some s
  | Some Obs.Json.Null | None -> None
  | Some _ -> bad "%s must be a string" what

let get_opt_int ~what = function
  | Some (Obs.Json.Int i) -> Some i
  | Some Obs.Json.Null | None -> None
  | Some _ -> bad "%s must be an integer" what

let get_number ~what = function
  | Obs.Json.Int i -> float_of_int i
  | Obs.Json.Float f ->
    if Float.is_finite f then f else bad "%s must be finite" what
  | _ -> bad "%s must be a number" what

let get_opt_number ~what = function
  | Some Obs.Json.Null | None -> None
  | Some j -> Some (get_number ~what j)

(* Cache geometry, mirroring the CLI's `simulate` flags: assoc is
   "direct" | "full" | an integer way count; fill is "whole" |
   "partial" | "sector:N".  Omitted fields default to the paper's
   2KB/64B direct-mapped whole-fill design point. *)
let parse_config json =
  match member "cache" json with
  | None -> Icache.Config.make ~size:2048 ~block:64 ()
  | Some (Obs.Json.Obj _ as c) ->
    let size =
      Option.value ~default:2048 (get_opt_int ~what:"cache.size" (member "size" c))
    in
    let block =
      Option.value ~default:64 (get_opt_int ~what:"cache.block" (member "block" c))
    in
    let assoc =
      match member "assoc" c with
      | None | Some Obs.Json.Null -> Icache.Config.Direct
      | Some (Obs.Json.String "direct") -> Icache.Config.Direct
      | Some (Obs.Json.String "full") -> Icache.Config.Full
      | Some (Obs.Json.Int n) -> Icache.Config.Ways n
      | Some _ -> bad "cache.assoc must be \"direct\", \"full\" or an integer"
    in
    let fill =
      match member "fill" c with
      | None | Some Obs.Json.Null -> Icache.Config.Whole
      | Some (Obs.Json.String "whole") -> Icache.Config.Whole
      | Some (Obs.Json.String "partial") -> Icache.Config.Partial
      | Some (Obs.Json.String s) -> (
        match String.split_on_char ':' s with
        | [ "sector"; n ] -> (
          match int_of_string_opt n with
          | Some n -> Icache.Config.Sectored n
          | None -> bad "cache.fill sector size must be an integer")
        | _ -> bad "cache.fill must be \"whole\", \"partial\" or \"sector:N\"")
      | Some _ -> bad "cache.fill must be a string"
    in
    let prefetch =
      match member "prefetch" c with
      | None | Some Obs.Json.Null | Some (Obs.Json.Bool false) -> false
      | Some (Obs.Json.Bool true) -> true
      | Some _ -> bad "cache.prefetch must be a boolean"
    in
    (* [make] re-validates; Invalid is mapped by [error_of_exn]. *)
    Icache.Config.make ~assoc ~fill ~prefetch ~size ~block ()
  | Some _ -> bad "cache must be an object"

let parse_count_rows ~what ~arity json =
  match json with
  | None -> []
  | Some (Obs.Json.List rows) ->
    List.mapi
      (fun i row ->
        match row with
        | Obs.Json.List cells when List.length cells = arity ->
          List.mapi
            (fun j cell ->
              get_number ~what:(Printf.sprintf "%s[%d][%d]" what i j) cell)
            cells
        | _ -> bad "%s[%d] must be an array of %d numbers" what i arity)
      rows
  | Some _ -> bad "%s must be an array" what

let int_cell ~what f =
  if Float.is_integer f && Float.abs f < 1e9 then int_of_float f
  else bad "%s must be a small integer" what

let nonneg ~what f = if f < 0.0 then bad "%s must be >= 0" what else f

let parse_upload json =
  let profile = get_string ~what:"profile" (member "profile" json) in
  let bench = get_string ~what:"bench" (member "bench" json) in
  let epoch = get_opt_int ~what:"epoch" (member "epoch" json) in
  let weight =
    match get_opt_number ~what:"weight" (member "weight" json) with
    | None -> 1.0
    | Some w when w > 0.0 && Float.is_finite w -> w
    | Some _ -> bad "weight must be > 0"
  in
  let blocks =
    List.map
      (function
        | [ fid; l; c ] ->
          ( int_cell ~what:"blocks fid" fid,
            int_cell ~what:"blocks label" l,
            nonneg ~what:"blocks count" c )
        | _ -> assert false)
      (parse_count_rows ~what:"blocks" ~arity:3 (member "blocks" json))
  in
  let arcs =
    List.map
      (function
        | [ fid; s; d; c ] ->
          ( int_cell ~what:"arcs fid" fid,
            int_cell ~what:"arcs src" s,
            int_cell ~what:"arcs dst" d,
            nonneg ~what:"arcs count" c )
        | _ -> assert false)
      (parse_count_rows ~what:"arcs" ~arity:4 (member "arcs" json))
  in
  let entries =
    List.map
      (function
        | [ fid; c ] ->
          ( int_cell ~what:"entries fid" fid,
            nonneg ~what:"entries count" c )
        | _ -> assert false)
      (parse_count_rows ~what:"entries" ~arity:2 (member "entries" json))
  in
  let calls =
    List.map
      (function
        | [ caller; block; callee; c ] ->
          ( int_cell ~what:"calls caller" caller,
            int_cell ~what:"calls block" block,
            int_cell ~what:"calls callee" callee,
            nonneg ~what:"calls count" c )
        | _ -> assert false)
      (parse_count_rows ~what:"calls" ~arity:4 (member "calls" json))
  in
  Profile_upload { profile; bench; epoch; weight; blocks; arcs; entries; calls }

let request_name = function
  | Layout_request _ -> "layout-request"
  | Profile_upload _ -> "profile-upload"
  | Lint_request _ -> "lint-request"
  | Stats -> "stats"
  | Subscribe _ -> "subscribe"
  | Health -> "health"
  | Shutdown -> "shutdown"

(* The request id is echoed verbatim in the response so clients can
   correlate pipelined traffic; it must stay scalar (a composite id
   would let a client smuggle unbounded data into every response). *)
let parse_id json =
  match member "id" json with
  | None -> Obs.Json.Null
  | Some (Obs.Json.String _ | Obs.Json.Int _ | Obs.Json.Null) ->
    Option.value ~default:Obs.Json.Null (member "id" json)
  | Some _ -> bad "id must be a string, an integer or null"

let parse_request ?max_depth ?max_bytes (line : string) :
    (parsed, Obs.Json.t * error_info) result =
  match Obs.Json.parse ?max_depth ?max_bytes line with
  | Error msg ->
    Error (Obs.Json.Null, usage_error (Printf.sprintf "parse error: %s" msg))
  | Ok json -> (
    try
      let id = parse_id json in
      try
        (match member "schema" json with
        | Some (Obs.Json.String s) when s = schema -> ()
        | Some (Obs.Json.String s) ->
          bad "unknown schema %S (this daemon speaks %s)" s schema
        | Some _ -> bad "schema must be a string"
        | None -> bad "missing field \"schema\"");
        let req =
          match get_string ~what:"type" (member "type" json) with
          | "layout-request" ->
            Layout_request
              {
                bench = get_string ~what:"bench" (member "bench" json);
                strategy =
                  Option.value ~default:"impact"
                    (get_opt_string ~what:"strategy" (member "strategy" json));
                config = parse_config json;
                profile = get_opt_string ~what:"profile" (member "profile" json);
                deadline_ms =
                  (match get_opt_int ~what:"deadline_ms" (member "deadline_ms" json) with
                  | Some d when d < 0 -> bad "deadline_ms must be >= 0"
                  | d -> d);
              }
          | "profile-upload" -> parse_upload json
          | "lint-request" ->
            Lint_request
              {
                bench = get_string ~what:"bench" (member "bench" json);
                strategy =
                  Option.value ~default:"impact"
                    (get_opt_string ~what:"strategy" (member "strategy" json));
                min_prob =
                  get_opt_number ~what:"min_prob" (member "min_prob" json);
              }
          | "stats" -> Stats
          | "subscribe" ->
            let profiles =
              match member "profiles" json with
              | None | Some Obs.Json.Null -> None
              | Some (Obs.Json.List items) ->
                Some
                  (List.mapi
                     (fun i item ->
                       match item with
                       | Obs.Json.String s -> s
                       | _ -> bad "profiles[%d] must be a string" i)
                     items)
              | Some _ -> bad "profiles must be an array of strings or null"
            in
            Subscribe { profiles }
          | "health" -> Health
          | "shutdown" -> Shutdown
          | other -> bad "unknown request type %S" other
        in
        Ok { id; req }
      with
      | Bad e -> Error (id, e)
      | exn ->
        (* e.g. [Icache.Config.Invalid] out of the validated
           constructor: parsing must be total. *)
        Error (id, error_of_exn exn)
    with
    | Bad e -> Error (Obs.Json.Null, e)
    | exn -> Error (Obs.Json.Null, error_of_exn exn))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let response ~id ~request ~status fields =
  Obs.Json.Obj
    ([
       ("schema", Obs.Json.String schema);
       ("id", id);
       ("type", Obs.Json.String "response");
       ("request", Obs.Json.String request);
       ("status", Obs.Json.String status);
     ]
    @ fields)

let ok_response ~id ~request fields = response ~id ~request ~status:"ok" fields

let error_response ~id ~request (e : error_info) =
  response ~id ~request ~status:"error"
    [
      ( "error",
        Obs.Json.Obj
          [
            ("stage", Obs.Json.String e.stage);
            ("code", Obs.Json.Int e.code);
            ("message", Obs.Json.String e.message);
          ] );
    ]

let timeout_response ~id ~request ~retry_after_ms =
  response ~id ~request ~status:"timeout"
    [ ("retry_after_ms", Obs.Json.Int retry_after_ms) ]

(* Server-push staleness notification (subscribe): not a response to
   any request, so "type" is "notification" and the id is null.  The
   trace ties it to the profile-upload that advanced the epoch. *)
let stale_notification ~trace ~profile ~epoch ~revision ~poisoned ~stale =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("id", Obs.Json.Null);
      ("type", Obs.Json.String "notification");
      ("event", Obs.Json.String "layouts-stale");
      ("trace", Obs.Json.String trace);
      ("profile", Obs.Json.String profile);
      ("epoch", Obs.Json.Int epoch);
      ("revision", Obs.Json.Int revision);
      ("poisoned", Obs.Json.Bool poisoned);
      ( "stale",
        Obs.Json.List
          (List.map
             (fun (strategy, kind, rev) ->
               Obs.Json.Obj
                 [
                   ("strategy", Obs.Json.String strategy);
                   ("kind", Obs.Json.String kind);
                   ("revision", Obs.Json.Int rev);
                 ])
             stale) );
    ]

(* ------------------------------------------------------------------ *)
(* Building an upload from a measured profile                          *)
(* ------------------------------------------------------------------ *)

(* Serializes a [Vm.Profile.t] as a profile-upload request — how the
   test suite, the golden vectors and `serve.exe --sample` produce
   realistic traffic.  Rows are sorted so output is deterministic. *)
let upload_request_of_profile ?(id = Obs.Json.Null) ~name ~bench ?epoch
    ?(weight = 1.0) (p : Vm.Profile.t) : Obs.Json.t =
  let num f = Obs.Json.Float f in
  let blocks = ref [] and arcs = ref [] in
  Array.iteri
    (fun fid (fp : Vm.Profile.func_profile) ->
      Array.iteri
        (fun l c -> if c > 0 then blocks := (fid, l, c) :: !blocks)
        fp.Vm.Profile.block_counts;
      Array.iteri
        (fun src tbl ->
          Hashtbl.iter
            (fun dst c -> if c > 0 then arcs := (fid, src, dst, c) :: !arcs)
            tbl)
        fp.Vm.Profile.arc_counts)
    p.Vm.Profile.funcs;
  let entries = ref [] in
  Array.iteri
    (fun fid c -> if c > 0 then entries := (fid, c) :: !entries)
    p.Vm.Profile.entry_counts;
  let calls = ref [] in
  Hashtbl.iter
    (fun (caller, block, callee) c ->
      if c > 0 then calls := (caller, block, callee, c) :: !calls)
    p.Vm.Profile.site_counts;
  let rows3 xs =
    Obs.Json.List
      (List.map
         (fun (a, b, c) ->
           Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b; num (float_of_int c) ])
         (List.sort compare xs))
  in
  let rows4 xs =
    Obs.Json.List
      (List.map
         (fun (a, b, c, d) ->
           Obs.Json.List
             [ Obs.Json.Int a; Obs.Json.Int b; Obs.Json.Int c;
               num (float_of_int d) ])
         (List.sort compare xs))
  in
  let rows2 xs =
    Obs.Json.List
      (List.map
         (fun (a, b) -> Obs.Json.List [ Obs.Json.Int a; num (float_of_int b) ])
         (List.sort compare xs))
  in
  Obs.Json.Obj
    ([
       ("schema", Obs.Json.String schema);
       ("id", id);
       ("type", Obs.Json.String "profile-upload");
       ("profile", Obs.Json.String name);
       ("bench", Obs.Json.String bench);
     ]
    @ (match epoch with
      | Some e -> [ ("epoch", Obs.Json.Int e) ]
      | None -> [])
    @ [
        ("weight", num weight);
        ("blocks", rows3 !blocks);
        ("arcs", rows4 !arcs);
        ("entries", rows2 !entries);
        ("calls", rows4 !calls);
      ])
