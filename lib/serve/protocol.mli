(** Wire protocol of the layout service (`impact.serve/v1`): one JSON
    object per line in both directions, typed parse errors, and error
    responses carrying the PR 3 exit-code taxonomy. *)

val schema : string
(** ["impact.serve/v1"]. *)

type upload = {
  profile : string;
  bench : string;
  epoch : int option;
  weight : float;
  blocks : (int * int * float) list;  (** fid, label, count *)
  arcs : (int * int * int * float) list;  (** fid, src, dst, count *)
  entries : (int * float) list;  (** fid, invocation count *)
  calls : (int * int * int * float) list;
      (** caller fid, block, callee fid, count *)
}

type request =
  | Layout_request of {
      bench : string;
      strategy : string;
      config : Icache.Config.t;
      profile : string option;
      deadline_ms : int option;
    }
  | Profile_upload of upload
  | Lint_request of {
      bench : string;
      strategy : string;
      min_prob : float option;
    }
  | Stats
  | Subscribe of { profiles : string list option }
      (** register for push staleness notifications; [None] = every
          profile *)
  | Health
  | Shutdown

type parsed = { id : Obs.Json.t; req : request }
(** [id] is echoed verbatim in the response (scalar JSON only). *)

type error_info = { stage : string; code : int; message : string }
(** [stage]/[code] follow {!Ir.Diag.exit_code}: usage errors are 2, the
    pipeline stages own 10..17, the linter 18; stage ["internal"] with
    code 1 marks an unexpected server-side exception. *)

val usage_error : string -> error_info
val internal_error : string -> error_info
val error_of_diag : Ir.Diag.t -> error_info

val error_of_exn : exn -> error_info
(** Total: maps every exception to a structured error ([Diag.Fail] to
    its stage, the registry/strategy/config/Failure family to usage,
    anything else to [internal]). *)

val request_name : request -> string

val parse_request :
  ?max_depth:int ->
  ?max_bytes:int ->
  string ->
  (parsed, Obs.Json.t * error_info) result
(** Parse one request line.  On error, the returned id is the request's
    own when it could be extracted (so the error response still
    correlates), [Null] otherwise. *)

val ok_response :
  id:Obs.Json.t -> request:string -> (string * Obs.Json.t) list -> Obs.Json.t

val error_response :
  id:Obs.Json.t -> request:string -> error_info -> Obs.Json.t

val timeout_response :
  id:Obs.Json.t -> request:string -> retry_after_ms:int -> Obs.Json.t

val stale_notification :
  trace:string ->
  profile:string ->
  epoch:int ->
  revision:int ->
  poisoned:bool ->
  stale:(string * string * int) list ->
  Obs.Json.t
(** Server-push line ([type] "notification", [event] "layouts-stale",
    null id) announcing that cached layouts for [profile] went stale as
    its epoch advanced; [stale] rows are (strategy, kind, revision) of
    the invalidated cache entries, and [trace] names the upload request
    that caused the push. *)

val upload_request_of_profile :
  ?id:Obs.Json.t ->
  name:string ->
  bench:string ->
  ?epoch:int ->
  ?weight:float ->
  Vm.Profile.t ->
  Obs.Json.t
(** Serialize a measured profile as a profile-upload request (used by
    tests, the golden vectors and [serve.exe --sample]); deterministic
    row order. *)
