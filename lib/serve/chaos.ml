(* Fault-injection harness: fires a seeded stream of adversarial and
   valid requests at a daemon and checks the robustness contract —
   zero crashes, exactly one well-formed response per request, and the
   right status (and degradation tier, where one is forced) for every
   category of abuse. *)

let chaos_strategy : Placement.Strategy.t =
  {
    id = "chaos-raise";
    title = "chaos: always raises";
    layout = (fun _ _ -> failwith "chaos-raise: injected layout failure");
    global = (fun _ ~entry:_ _ -> failwith "chaos-raise: injected global failure");
    entry_first = false;
    splits_dead_code = false;
  }

(* Small caps and a small size limit so the campaign actually crosses
   every bound it is meant to test. *)
let default_config () =
  let benches =
    match Workloads.Registry.names with
    | a :: b :: _ -> [ a; b ]
    | names -> names
  in
  {
    Daemon.default_config with
    max_request_bytes = 1 lsl 16;
    profile_cap = Some 4;
    memo_cap = Some 16;
    strategy_cap = Some 4;
    map_cap = 4;
    benches = Some benches;
    extra_strategies = [ chaos_strategy ];
  }

type report = {
  seed : int;
  requests : int;
  responses : int;
  notifications : int;
      (** push staleness notifications interleaved in the output *)
  ok : int;
  errors : int;
  timeouts : int;
  by_category : (string * int) list;
  violations : string list;  (** contract breaches; [[]] = clean campaign *)
}

(* ------------------------------------------------------------------ *)
(* Request generators                                                  *)
(* ------------------------------------------------------------------ *)

let line_of json = Obs.Json.to_string json

let base ~id ~typ fields =
  Obs.Json.Obj
    ([
       ("schema", Obs.Json.String Protocol.schema);
       ("id", Obs.Json.Int id);
       ("type", Obs.Json.String typ);
     ]
    @ fields)

let layout_line ~id ~bench ~strategy extra =
  line_of
    (base ~id ~typ:"layout-request"
       ([ ("bench", Obs.Json.String bench);
          ("strategy", Obs.Json.String strategy) ]
       @ extra))

let cache_obj rng =
  let sizes = [| 1024; 2048; 4096 |] in
  let blocks = [| 32; 64 |] in
  Obs.Json.Obj
    [
      ("size", Obs.Json.Int (Workloads.Rng.pick rng sizes));
      ("block", Obs.Json.Int (Workloads.Rng.pick rng blocks));
    ]

let strategies = [| "impact"; "natural"; "ph"; "exttsp"; "c3" |]

(* One category per generator: (name, expected statuses, request line). *)
let generate rng ~benches ~config i : string * string list * string =
  let bench () = Workloads.Rng.pick_list rng benches in
  let bench0 = List.hd benches in
  match Workloads.Rng.int rng 18 with
  | 0 ->
      ( "layout-valid",
        [ "ok" ],
        layout_line ~id:i ~bench:(bench ())
          ~strategy:(Workloads.Rng.pick rng strategies)
          [ ("cache", cache_obj rng) ] )
  | 1 ->
      ( "layout-bad-bench",
        [ "error" ],
        layout_line ~id:i ~bench:"no-such-bench" ~strategy:"impact" [] )
  | 2 ->
      ( "layout-chaos-strategy",
        [ "ok" ],
        layout_line ~id:i ~bench:(bench ()) ~strategy:"chaos-raise" [] )
  | 3 ->
      ( "layout-deadline-0",
        [ "timeout" ],
        layout_line ~id:i ~bench:(bench ()) ~strategy:"impact"
          [ ("deadline_ms", Obs.Json.Int 0) ] )
  | 4 ->
      ( "layout-deadline-cheap",
        [ "ok" ],
        layout_line ~id:i ~bench:(bench ()) ~strategy:"impact"
          [
            ( "deadline_ms",
              Obs.Json.Int
                (Workloads.Rng.range rng 1 config.Daemon.cheap_threshold_ms) );
          ] )
  | 5 ->
      ( "layout-bad-config",
        [ "error" ],
        layout_line ~id:i ~bench:(bench ()) ~strategy:"impact"
          [
            ( "cache",
              Obs.Json.Obj
                [ ("size", Obs.Json.Int 7); ("block", Obs.Json.Int 3) ] );
          ] )
  | 6 ->
      (* Exists once uploads have landed; unknown before that. *)
      ( "layout-profile",
        [ "ok"; "error" ],
        layout_line ~id:i ~bench:bench0
          ~strategy:(Workloads.Rng.pick rng strategies)
          [ ("profile", Obs.Json.String "chaos-epoch") ] )
  | 7 ->
      (* Structurally valid but not flow-conserving: poisons the profile
         (status stays ok — that is the degradation contract). *)
      ( "upload-epoch",
        [ "ok" ],
        line_of
          (base ~id:i ~typ:"profile-upload"
             [
               ("profile", Obs.Json.String "chaos-epoch");
               ("bench", Obs.Json.String bench0);
               ("epoch", Obs.Json.Int (Workloads.Rng.int rng 9));
               ( "entries",
                 Obs.Json.List
                   [
                     Obs.Json.List
                       [
                         Obs.Json.Int 0;
                         Obs.Json.Float
                           (float_of_int (1 + Workloads.Rng.int rng 50));
                       ];
                   ] );
             ]) )
  | 8 ->
      ( "upload-bad-ids",
        [ "error" ],
        line_of
          (base ~id:i ~typ:"profile-upload"
             [
               ("profile", Obs.Json.String "chaos-bad");
               ("bench", Obs.Json.String bench0);
               ( "blocks",
                 Obs.Json.List
                   [
                     Obs.Json.List
                       [ Obs.Json.Int 9999; Obs.Json.Int 0; Obs.Json.Int 1 ];
                   ] );
             ]) )
  | 9 ->
      let full =
        layout_line ~id:i ~bench:(bench ()) ~strategy:"impact"
          [ ("cache", cache_obj rng) ]
      in
      let cut = 1 + Workloads.Rng.int rng (String.length full - 1) in
      ("truncated", [ "error" ], String.sub full 0 cut)
  | 10 ->
      ( "depth-bomb",
        [ "error" ],
        String.concat "" (List.init 2000 (fun _ -> "[")) )
  | 11 ->
      ( "oversize",
        [ "error" ],
        String.make (config.Daemon.max_request_bytes + 16) 'x' )
  | 12 ->
      ( "bad-schema",
        [ "error" ],
        line_of
          (Obs.Json.Obj
             [
               ("schema", Obs.Json.String "impact.serve/v99");
               ("id", Obs.Json.Int i);
               ("type", Obs.Json.String "stats");
             ]) )
  | 13 ->
      (* Two half-written requests interleaved on one line. *)
      let a = layout_line ~id:i ~bench:(bench ()) ~strategy:"impact" [] in
      ( "half-written",
        [ "error" ],
        String.sub a 0 (String.length a / 2) ^ "{\"schema\":" )
  | 14 ->
      ( "lint-valid",
        [ "ok" ],
        line_of
          (base ~id:i ~typ:"lint-request"
             [
               ("bench", Obs.Json.String (bench ()));
               ( "strategy",
                 Obs.Json.String (Workloads.Rng.pick rng strategies) );
             ]) )
  | 15 ->
      (* Subscribing mid-campaign turns later accepted uploads into
         push notifications — the pairing below must stay correct. *)
      let profiles =
        if Workloads.Rng.int rng 2 = 0 then []
        else [ ("profiles", Obs.Json.List [ Obs.Json.String "chaos-epoch" ]) ]
      in
      ("subscribe", [ "ok" ], line_of (base ~id:i ~typ:"subscribe" profiles))
  | 16 -> ("health", [ "ok" ], line_of (base ~id:i ~typ:"health" []))
  | _ -> ("stats", [ "ok" ], line_of (base ~id:i ~typ:"stats" []))

(* ------------------------------------------------------------------ *)
(* Response contract                                                   *)
(* ------------------------------------------------------------------ *)

let field key resp =
  match Obs.Json.member key resp with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let tier_of resp = field "tier" resp

let well_formed resp =
  field "status" resp <> None
  && field "request" resp <> None
  && field "schema" resp = Some Protocol.schema

let check_response ~cat ~expected ~index resp : string list =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  if not (well_formed resp) then
    fail "request %d (%s): response not well-formed: %s" index cat
      (Obs.Json.to_string resp);
  (match field "status" resp with
  | Some s when List.mem s expected -> ()
  | Some s ->
      fail "request %d (%s): status %S, expected one of [%s]" index cat s
        (String.concat "; " expected)
  | None -> fail "request %d (%s): missing status" index cat);
  (match cat with
  | "layout-chaos-strategy" ->
      if tier_of resp <> Some "natural-fallback" then
        fail "request %d: chaos strategy should degrade to natural-fallback"
          index
  | "layout-deadline-cheap" ->
      if tier_of resp <> Some "cheapest-strategy" then
        fail "request %d: tight deadline should admit the cheapest strategy"
          index
  | "layout-deadline-0" ->
      if Obs.Json.member "retry_after_ms" resp = None then
        fail "request %d: timeout response must carry retry_after_ms" index
  | _ -> ());
  !violations

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0xC4A05) ?(n = 200) ?config () : report =
  let config = match config with Some c -> c | None -> default_config () in
  let daemon = Daemon.create ~config () in
  let benches =
    match config.benches with
    | Some l -> l
    | None -> Workloads.Registry.names
  in
  let rng = Workloads.Rng.create seed in
  (* Seed the store with one genuinely flow-conserving upload so the
     named-profile path is exercised from both sides of validity. *)
  let seed_upload =
    let entry = Experiments.Context.find (Daemon.context daemon) (List.hd benches) in
    let pipe = Experiments.Context.pipeline entry in
    line_of
      (Protocol.upload_request_of_profile ~id:(Obs.Json.Int (-1))
         ~name:"chaos-good" ~bench:(List.hd benches)
         pipe.Placement.Pipeline.profile)
  in
  let seeded = [ ("upload-valid", [ "ok" ], seed_upload) ] in
  let generated =
    List.init n (fun i -> generate rng ~benches ~config i)
  in
  let all = seeded @ generated in
  let lines = List.map (fun (_, _, l) -> l) all in
  let emitted = Daemon.run_lines daemon lines in
  (* Push notifications ride the same stream but answer no request:
     split them out before pairing requests with responses. *)
  let is_notification j =
    match Obs.Json.member "type" j with
    | Some (Obs.Json.String "notification") -> true
    | _ -> false
  in
  let notifications, responses = List.partition is_notification emitted in
  let violations = ref [] in
  List.iteri
    (fun i n ->
      let bad fmt =
        Printf.ksprintf (fun m -> violations := !violations @ [ m ]) fmt
      in
      if Obs.Json.member "schema" n <> Some (Obs.Json.String Protocol.schema)
      then bad "notification %d: wrong schema" i;
      (match Obs.Json.member "event" n with
      | Some (Obs.Json.String "layouts-stale") -> ()
      | _ -> bad "notification %d: event must be layouts-stale" i);
      match Obs.Json.member "stale" n with
      | Some (Obs.Json.List (_ :: _)) -> ()
      | _ -> bad "notification %d: must name at least one stale layout" i)
    notifications;
  if List.length responses <> List.length all then
    violations :=
      [
        Printf.sprintf "%d requests but %d responses" (List.length all)
          (List.length responses);
      ];
  let counts = Hashtbl.create 16 in
  let ok = ref 0 and errors = ref 0 and timeouts = ref 0 in
  List.iteri
    (fun index ((cat, expected, _), resp) ->
      Hashtbl.replace counts cat
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts cat));
      (match field "status" resp with
      | Some "ok" -> incr ok
      | Some "error" -> incr errors
      | Some "timeout" -> incr timeouts
      | _ -> ());
      violations := !violations @ check_response ~cat ~expected ~index resp)
    (List.combine
       (List.filteri (fun i _ -> i < List.length responses) all)
       responses);
  {
    seed;
    requests = List.length all;
    responses = List.length responses;
    notifications = List.length notifications;
    ok = !ok;
    errors = !errors;
    timeouts = !timeouts;
    by_category =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] |> List.sort compare;
    violations = !violations;
  }

let report_json (r : report) =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "impact.serve-chaos/v1");
      ("seed", Obs.Json.Int r.seed);
      ("requests", Obs.Json.Int r.requests);
      ("responses", Obs.Json.Int r.responses);
      ("notifications", Obs.Json.Int r.notifications);
      ("ok", Obs.Json.Int r.ok);
      ("errors", Obs.Json.Int r.errors);
      ("timeouts", Obs.Json.Int r.timeouts);
      ( "by_category",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Int v)) r.by_category) );
      ( "violations",
        Obs.Json.List (List.map (fun v -> Obs.Json.String v) r.violations) );
    ]

let summary (r : report) =
  Printf.sprintf
    "chaos: seed %#x, %d requests -> %d responses + %d notifications (%d ok, \
     %d error, %d timeout), %d violation%s"
    r.seed r.requests r.responses r.notifications r.ok r.errors r.timeouts
    (List.length r.violations)
    (if List.length r.violations = 1 then "" else "s")
