(** Soak harness: a seeded chaos-weighted workload driven through the
    daemon for a wall-clock duration, with live telemetry on and memory
    asserted under a ceiling.

    The preamble registers a subscribe-all client, seeds a
    flow-conserving profile and caches one layout against it; each
    round then replays the chaos mix plus a layout on the soak profile,
    advancing its epoch every third round so push staleness
    notifications actually flow.  Memory (OCaml live words, RSS) is
    sampled each interval into the [serve.live_words] and
    [serve.rss_bytes] gauges.  The report is the [impact.soak/v1]
    document; a non-empty [violations] means the service contract broke
    under sustained load. *)

type config = {
  seed : int;
  duration_s : float;
  interval_s : float;  (** memory sampling period *)
  ceiling_bytes : int;  (** max OCaml live bytes tolerated *)
  round_requests : int;  (** chaos requests per round *)
  daemon : Daemon.config;
}

val default_config : unit -> config
(** 30 s, 1 s sampling, a 512 MiB live ceiling, 24 chaos requests per
    round, over {!Chaos.default_config}. *)

type report = {
  seed : int;
  duration_s : float;  (** actually elapsed *)
  rounds : int;
  requests : int;
  responses : int;
  notifications : int;
  ok : int;
  errors : int;
  timeouts : int;
  latency_all : Obs.Metrics.histogram;
  latency_layout : Obs.Metrics.histogram;
  memory_samples : int;
  max_live_bytes : int;
  max_rss_bytes : int;
  ceiling_bytes : int;
  evictions_profiles : int;
  evictions_maps : int;
  violations : string list;
}

val run : ?config:config -> unit -> report
(** Run the soak.  Forces the metrics registry on for the duration
    (restored after); caps span retention when tracing is enabled. *)

val report_json : report -> Obs.Json.t
(** The [impact.soak/v1] document. *)

val summary : report -> string
