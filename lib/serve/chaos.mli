(** Fault-injection harness for the layout service.

    A campaign fires a seeded stream of requests — valid layouts and
    lints, raising strategies, zero and near-zero deadlines, malformed
    and truncated JSON, nesting bombs, oversized payloads, unknown
    schema versions, uploads with out-of-range ids and non-conserving
    counts, plus subscribe and health probes — through the full batched
    serve loop and checks the robustness contract: the daemon never
    crashes, answers every request with exactly one well-formed
    response (push notifications are split out of the stream and
    checked separately), and lands in the forced degradation tier where
    one is expected. *)

val chaos_strategy : Placement.Strategy.t
(** Registry entry ["chaos-raise"]: raises from both layout hooks, for
    exercising the natural-fallback tier.  Injected via
    {!Daemon.config.extra_strategies}. *)

val default_config : unit -> Daemon.config
(** Two benchmarks, small caps and a 64 KiB request limit, with
    {!chaos_strategy} installed — every bound the campaign tests is
    actually crossable. *)

type report = {
  seed : int;
  requests : int;
  responses : int;
  notifications : int;
      (** push staleness notifications interleaved in the output *)
  ok : int;
  errors : int;
  timeouts : int;
  by_category : (string * int) list;
  violations : string list;  (** contract breaches; [[]] = clean campaign *)
}

val generate :
  Workloads.Rng.t ->
  benches:string list ->
  config:Daemon.config ->
  int ->
  string * string list * string
(** One seeded request: (category, expected statuses, line).  Exposed
    so the soak harness can reuse the adversarial mix. *)

val run : ?seed:int -> ?n:int -> ?config:Daemon.config -> unit -> report
(** Run a campaign of [n] (default 200) seeded requests plus one
    flow-conserving profile upload.  Deterministic for a given seed and
    config. *)

val report_json : report -> Obs.Json.t
val summary : report -> string
