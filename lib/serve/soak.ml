(* Soak harness: a seeded, chaos-weighted workload driven through the
   daemon for a wall-clock duration, with memory kept under an asserted
   ceiling.

   Each round sends a bounded batch through [Daemon.run_lines]: the
   chaos generator's adversarial mix, plus one layout-request against
   the soak profile (so a map is always cached and can go stale) and a
   periodic epoch-advancing upload (so staleness notifications actually
   push — the subscribe-all client registered in the preamble observes
   them).  Between rounds the harness samples memory — OCaml live words
   from [Gc.stat] and resident-set bytes from /proc/self/statm — into
   the [serve.live_words]/[serve.rss_bytes] gauges and tracks the
   maxima.

   The report ([impact.soak/v1]) asserts the contract a long-running
   service must keep: every request answered (notifications split out),
   statuses within each category's expectation, at least one staleness
   notification observed, exactly-once notification per (layout,
   epoch), nonzero latency quantiles, and max live bytes under the
   ceiling.  Any breach lands in [violations] and fails the run. *)

type config = {
  seed : int;
  duration_s : float;
  interval_s : float;  (* memory sampling period *)
  ceiling_bytes : int;  (* max OCaml live bytes tolerated *)
  round_requests : int;  (* chaos requests per round *)
  daemon : Daemon.config;
}

let default_config () =
  {
    seed = 0x50AC;
    duration_s = 30.0;
    interval_s = 1.0;
    ceiling_bytes = 512 * 1024 * 1024;
    round_requests = 24;
    daemon = Chaos.default_config ();
  }

type report = {
  seed : int;
  duration_s : float;  (* actually elapsed *)
  rounds : int;
  requests : int;
  responses : int;
  notifications : int;
  ok : int;
  errors : int;
  timeouts : int;
  latency_all : Obs.Metrics.histogram;
  latency_layout : Obs.Metrics.histogram;
  memory_samples : int;
  max_live_bytes : int;
  max_rss_bytes : int;
  ceiling_bytes : int;
  evictions_profiles : int;
  evictions_maps : int;
  violations : string list;
}

let live_words_gauge =
  Obs.Metrics.gauge "serve.live_words"
    ~help:"OCaml heap live words at the last soak sample"

let rss_gauge =
  Obs.Metrics.gauge "serve.rss_bytes"
    ~help:"Resident set size at the last soak sample"

(* Resident set in bytes from /proc/self/statm (field 2 is resident
   pages); 0 where /proc is unavailable. *)
let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ ->
          (match int_of_string_opt resident with
          | Some pages -> pages * 4096
          | None -> 0)
        | _ -> 0
        | exception End_of_file -> 0)

let word_bytes = Sys.word_size / 8

let sample_memory () =
  let live_bytes = (Gc.stat ()).Gc.live_words * word_bytes in
  let rss = rss_bytes () in
  Obs.Metrics.set live_words_gauge (float_of_int (live_bytes / word_bytes));
  Obs.Metrics.set rss_gauge (float_of_int rss);
  (live_bytes, rss)

let is_notification j =
  match Obs.Json.member "type" j with
  | Some (Obs.Json.String "notification") -> true
  | _ -> false

let line_of json = Obs.Json.to_string json

let run ?(config = default_config ()) () : report =
  let metrics_were_on = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  if Obs.Span.enabled () then Obs.Span.set_cap (Some 65_536);
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled metrics_were_on)
  @@ fun () ->
  let daemon = Daemon.create ~config:config.daemon () in
  let benches =
    match config.daemon.Daemon.benches with
    | Some l -> l
    | None -> Workloads.Registry.names
  in
  let bench0 = List.hd benches in
  let rng = Workloads.Rng.create config.seed in
  let entry = Experiments.Context.find (Daemon.context daemon) bench0 in
  let pipe = Experiments.Context.pipeline entry in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun m -> violations := !violations @ [ m ]) fmt
  in
  (* Exactly-once ledger: (profile, strategy, kind, epoch) already seen
     in a notification must never reappear. *)
  let seen_stale = Hashtbl.create 64 in
  let requests = ref 0
  and responses = ref 0
  and notifications = ref 0
  and ok = ref 0
  and errors = ref 0
  and timeouts = ref 0 in
  let absorb cats emitted =
    let notes, resps = List.partition is_notification emitted in
    responses := !responses + List.length resps;
    notifications := !notifications + List.length notes;
    if List.length resps <> List.length cats then
      violate "round answered %d of %d requests" (List.length resps)
        (List.length cats);
    List.iteri
      (fun i resp ->
        match Obs.Json.member "status" resp with
        | Some (Obs.Json.String "ok") -> incr ok
        | Some (Obs.Json.String "error") -> incr errors
        | Some (Obs.Json.String "timeout") -> incr timeouts
        | _ -> violate "response %d of a round has no status" i)
      resps;
    (* Status-contract check per category, in order. *)
    (if List.length resps = List.length cats then
       List.iter2
         (fun (cat, expected) resp ->
           match Obs.Json.member "status" resp with
           | Some (Obs.Json.String s) when List.mem s expected -> ()
           | Some (Obs.Json.String s) ->
             violate "category %s answered %S (expected one of [%s])" cat s
               (String.concat "; " expected)
           | _ -> ())
         cats resps);
    List.iter
      (fun n ->
        let profile =
          match Obs.Json.member "profile" n with
          | Some (Obs.Json.String p) -> p
          | _ ->
            violate "notification without profile";
            "?"
        in
        let epoch =
          match Obs.Json.member "epoch" n with
          | Some (Obs.Json.Int e) -> e
          | _ ->
            violate "notification without epoch";
            -1
        in
        match Obs.Json.member "stale" n with
        | Some (Obs.Json.List rows) when rows <> [] ->
          List.iter
            (fun row ->
              let str k =
                match Obs.Json.member k row with
                | Some (Obs.Json.String s) -> s
                | _ -> "?"
              in
              let key = (profile, str "strategy", str "kind", epoch) in
              if Hashtbl.mem seen_stale key then
                violate
                  "duplicate staleness notification for %s/%s/%s epoch %d"
                  profile (str "strategy") (str "kind") epoch
              else Hashtbl.add seen_stale key ())
            rows
        | _ -> violate "notification with empty stale list")
      notes
  in
  let send cats lines =
    requests := !requests + List.length lines;
    absorb cats (Daemon.run_lines daemon lines)
  in
  (* Preamble: a subscribe-all client, a flow-conserving upload into the
     soak profile, and one layout against it so a map is cached (and
     can later go stale). *)
  send
    [
      ("subscribe", [ "ok" ]);
      ("upload-valid", [ "ok" ]);
      ("layout-profile", [ "ok" ]);
    ]
    [
      line_of
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String Protocol.schema);
             ("id", Obs.Json.String "soak-sub");
             ("type", Obs.Json.String "subscribe");
           ]);
      line_of
        (Protocol.upload_request_of_profile
           ~id:(Obs.Json.String "soak-seed") ~name:"soak" ~bench:bench0
           ~epoch:1 pipe.Placement.Pipeline.profile);
      line_of
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String Protocol.schema);
             ("id", Obs.Json.String "soak-map");
             ("type", Obs.Json.String "layout-request");
             ("bench", Obs.Json.String bench0);
             ("strategy", Obs.Json.String "impact");
             ("profile", Obs.Json.String "soak");
           ]);
    ];
  let t0 = Obs.Clock.now () in
  let last_sample = ref t0 in
  let max_live = ref 0 and max_rss = ref 0 and samples = ref 0 in
  let take_sample () =
    let live, rss = sample_memory () in
    incr samples;
    if live > !max_live then max_live := live;
    if rss > !max_rss then max_rss := rss;
    last_sample := Obs.Clock.now ()
  in
  take_sample ();
  let rounds = ref 0 in
  let epoch = ref 1 in
  while Obs.Clock.now () -. t0 < config.duration_s do
    incr rounds;
    let chaos_part =
      List.init config.round_requests (fun i ->
          let cat, expected, l =
            Chaos.generate rng ~benches ~config:config.daemon
              (((!rounds - 1) * config.round_requests) + i)
          in
          ((cat, expected), l))
    in
    (* One layout against the soak profile every round keeps a map
       cached at the current revision... *)
    let layout_soak =
      ( ("layout-soak", [ "ok" ]),
        line_of
          (Obs.Json.Obj
             [
               ("schema", Obs.Json.String Protocol.schema);
               ("id", Obs.Json.String (Printf.sprintf "soak-l%d" !rounds));
               ("type", Obs.Json.String "layout-request");
               ("bench", Obs.Json.String bench0);
               ("strategy", Obs.Json.String "impact");
               ("profile", Obs.Json.String "soak");
             ]) )
    in
    (* ...and every third round an epoch-advancing upload makes it
       stale, driving a push notification to the subscriber. *)
    let upload_part =
      if !rounds mod 3 = 1 then begin
        incr epoch;
        [
          ( ("upload-advance", [ "ok" ]),
            line_of
              (Protocol.upload_request_of_profile
                 ~id:(Obs.Json.String (Printf.sprintf "soak-u%d" !rounds))
                 ~name:"soak" ~bench:bench0 ~epoch:!epoch
                 pipe.Placement.Pipeline.profile) );
        ]
      end
      else []
    in
    let batch = (layout_soak :: chaos_part) @ upload_part in
    send (List.map fst batch) (List.map snd batch);
    if Obs.Clock.now () -. !last_sample >= config.interval_s then
      take_sample ()
  done;
  take_sample ();
  let latency_all = Daemon.latency_hist "all" in
  let latency_layout = Daemon.latency_hist "layout-request" in
  if !notifications = 0 then
    violate "no staleness notification observed by the subscriber";
  if !max_live > config.ceiling_bytes then
    violate "max live bytes %d exceeded the ceiling %d" !max_live
      config.ceiling_bytes;
  if !responses > 0 && Obs.Metrics.hist_quantile latency_all 0.5 <= 0.0 then
    violate "p50 latency is zero despite %d responses" !responses;
  if !responses > 0 && Obs.Metrics.hist_quantile latency_all 0.99 <= 0.0 then
    violate "p99 latency is zero despite %d responses" !responses;
  {
    seed = config.seed;
    duration_s = Obs.Clock.now () -. t0;
    rounds = !rounds;
    requests = !requests;
    responses = !responses;
    notifications = !notifications;
    ok = !ok;
    errors = !errors;
    timeouts = !timeouts;
    latency_all;
    latency_layout;
    memory_samples = !samples;
    max_live_bytes = !max_live;
    max_rss_bytes = !max_rss;
    ceiling_bytes = config.ceiling_bytes;
    evictions_profiles = Store.evictions_total (Daemon.store daemon);
    evictions_maps = Obs.Metrics.value Daemon.map_evictions;
    violations = !violations;
  }

let latency_json h =
  let ms p = Obs.Json.Float (1000.0 *. Obs.Metrics.hist_quantile h p) in
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int (Obs.Metrics.hist_count h));
      ("mean_ms", Obs.Json.Float (1000.0 *. Obs.Metrics.hist_mean h));
      ("p50_ms", ms 0.50);
      ("p90_ms", ms 0.90);
      ("p99_ms", ms 0.99);
      ("max_ms", Obs.Json.Float (1000.0 *. Obs.Metrics.hist_max h));
    ]

let report_json (r : report) =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "impact.soak/v1");
      ("seed", Obs.Json.Int r.seed);
      ("duration_s", Obs.Json.Float r.duration_s);
      ("rounds", Obs.Json.Int r.rounds);
      ("requests", Obs.Json.Int r.requests);
      ("responses", Obs.Json.Int r.responses);
      ("notifications", Obs.Json.Int r.notifications);
      ("ok", Obs.Json.Int r.ok);
      ("errors", Obs.Json.Int r.errors);
      ("timeouts", Obs.Json.Int r.timeouts);
      ( "latency",
        Obs.Json.Obj
          [
            ("all", latency_json r.latency_all);
            ("layout-request", latency_json r.latency_layout);
          ] );
      ( "memory",
        Obs.Json.Obj
          [
            ("samples", Obs.Json.Int r.memory_samples);
            ("max_live_bytes", Obs.Json.Int r.max_live_bytes);
            ("max_rss_bytes", Obs.Json.Int r.max_rss_bytes);
            ("ceiling_bytes", Obs.Json.Int r.ceiling_bytes);
            ( "ceiling_ok",
              Obs.Json.Bool (r.max_live_bytes <= r.ceiling_bytes) );
          ] );
      ( "evictions",
        Obs.Json.Obj
          [
            ("profiles", Obs.Json.Int r.evictions_profiles);
            ("maps", Obs.Json.Int r.evictions_maps);
          ] );
      ( "violations",
        Obs.Json.List (List.map (fun v -> Obs.Json.String v) r.violations) );
    ]

let summary (r : report) =
  Printf.sprintf
    "soak: seed %#x, %.1fs, %d rounds, %d requests -> %d responses + %d \
     notifications (%d ok, %d error, %d timeout), p50 %.2f ms, p99 %.2f ms, \
     max live %.1f MB (ceiling %.1f MB), %d violation%s"
    r.seed r.duration_s r.rounds r.requests r.responses r.notifications r.ok
    r.errors r.timeouts
    (1000.0 *. Obs.Metrics.hist_quantile r.latency_all 0.5)
    (1000.0 *. Obs.Metrics.hist_quantile r.latency_all 0.99)
    (float_of_int r.max_live_bytes /. 1048576.0)
    (float_of_int r.ceiling_bytes /. 1048576.0)
    (List.length r.violations)
    (if List.length r.violations = 1 then "" else "s")
