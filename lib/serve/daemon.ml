(* The layout-service daemon.

   One JSON request per line in, one JSON response per line out, in
   input order.  Robustness is the design axis: every failure a request
   can provoke — malformed JSON, unknown schema, a strategy that raises,
   an invalid cache geometry, an oversized payload — becomes a
   structured error response on that request alone; the daemon never
   dies and never skips a response.

   Parallelism and determinism: requests are read into bounded batches
   dispatched across the default {!Placement.Pool}.  A batch holds only
   read-only work (layout/lint/parse errors); profile-upload, stats and
   shutdown are barriers handled serially between batches.  Responses
   are emitted strictly in input order, accounting happens at emit time
   on one domain, no response contains a wall-clock value, and the batch
   width is a constant (not lane-dependent) — so `-j 1` and `-j N` runs
   are byte-identical, which the golden-vector replay checker enforces
   with a cmp-level comparison.

   Graceful degradation tiers, reported per response as ["tier"]:
   - ["none"]: served exactly as asked.
   - ["natural-fallback"]: the strategy raised; natural layout served.
   - ["cheapest-strategy"]: the deadline admits only the cheapest
     layout; natural layout served.
   - ["last-good-epoch"]: the named profile is poisoned (or has no
     usable snapshot yet); the last flow-conserving snapshot — or the
     builtin pipeline profile, as epoch 0 — served instead. *)

let requests_total =
  Obs.Metrics.counter "serve.requests" ~help:"Requests answered"

let errors_total =
  Obs.Metrics.counter "serve.errors" ~help:"Requests answered with an error"

let timeouts_total =
  Obs.Metrics.counter "serve.timeouts"
    ~help:"Requests answered with a timeout"

let degraded_total =
  Obs.Metrics.counter "serve.degraded"
    ~help:"Requests served in a degraded tier"

let map_evictions =
  Obs.Metrics.counter "serve.map_evictions"
    ~help:"Custom-profile address maps dropped by the LRU cap"

type config = {
  deadline_ms : int;
  cheap_threshold_ms : int;
  retry_base_ms : int;
  max_request_bytes : int;
  max_batch : int;
  profile_cap : int option;
  epoch_window : int;
  memo_cap : int option;
  strategy_cap : int option;
  map_cap : int;
  scale : int;
  benches : string list option;
  extra_strategies : Placement.Strategy.t list;
}

let default_config =
  {
    deadline_ms = 30_000;
    cheap_threshold_ms = 5;
    retry_base_ms = 25;
    max_request_bytes = 1 lsl 20;
    max_batch = 8;
    profile_cap = Some 64;
    epoch_window = 4;
    memo_cap = Some 256;
    strategy_cap = Some 16;
    map_cap = 32;
    scale = 1;
    benches = None;
    extra_strategies = [];
  }

type t = {
  config : config;
  context : Experiments.Context.t;
  store : Store.t;
  lock : Mutex.t;  (* guards map_cache and the emit-time counters *)
  mutable map_cache :
    ((string * int * string * string) * Placement.Address_map.t) list;
      (* (profile, revision, source kind, strategy id) -> map; MRU first *)
  mutable served : int;
  mutable by_type : (string * int) list;
  mutable by_status : (string * int) list;
  mutable stopped : bool;
}

let create ?(config = default_config) () =
  if config.map_cap < 1 then invalid_arg "Daemon.create: map_cap must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Daemon.create: max_batch must be >= 1";
  let context =
    Experiments.Context.create ~scale:config.scale ?memo_cap:config.memo_cap
      ?strategy_cap:config.strategy_cap ?names:config.benches ()
  in
  let store = Store.create ?cap:config.profile_cap ~window:config.epoch_window () in
  {
    config;
    context;
    store;
    lock = Mutex.create ();
    map_cache = [];
    served = 0;
    by_type = [];
    by_status = [];
    stopped = false;
  }

let context t = t.context
let store t = t.store

let find_strategy t id =
  match
    List.find_opt
      (fun s -> s.Placement.Strategy.id = id)
      t.config.extra_strategies
  with
  | Some s -> s
  | None -> Placement.Strategy.find id

(* ------------------------------------------------------------------ *)
(* Custom-profile address maps                                         *)
(* ------------------------------------------------------------------ *)

(* Maps derived from uploaded profiles are cached MRU-first under a
   key that pins the store revision, so the same snapshot always yields
   the same physical map — which is what keeps the context's simulation
   memo (keyed on physical map identity) hot across requests. *)
let cached_map t ~key build =
  Mutex.protect t.lock @@ fun () ->
  match List.assoc_opt key t.map_cache with
  | Some m ->
      t.map_cache <- (key, m) :: List.remove_assoc key t.map_cache;
      m
  | None ->
      let m = build () in
      let cache = (key, m) :: t.map_cache in
      if List.length cache > t.config.map_cap then begin
        t.map_cache <- List.filteri (fun i _ -> i < t.config.map_cap) cache;
        Obs.Metrics.incr map_evictions
      end
      else t.map_cache <- cache;
      m

(* Mirror of [Placement.Pipeline.map_for], over an uploaded profile
   instead of the pipeline's own. *)
let custom_map t entry (strat : Placement.Strategy.t) ~pname ~revision ~kind
    prof =
  let pipe = Experiments.Context.pipeline entry in
  let prog = pipe.Placement.Pipeline.program in
  let key = (pname, revision, kind, strat.id) in
  cached_map t ~key (fun () ->
      let nfuncs = Array.length prog.Ir.Prog.funcs in
      let layouts =
        Array.init nfuncs (fun fid ->
            strat.layout prog.funcs.(fid)
              (Placement.Weight.cfg_of_profile prof fid))
      in
      let order =
        strat.global nfuncs ~entry:prog.entry
          (Placement.Weight.call_of_profile prof)
      in
      Placement.Address_map.build prog ~layouts ~order)

(* ------------------------------------------------------------------ *)
(* layout-request                                                      *)
(* ------------------------------------------------------------------ *)

let retry_after t deadline =
  min 10_000 (max t.config.retry_base_ms (2 * deadline))

let elapsed_ms t0 = int_of_float ((Obs.Clock.now () -. t0) *. 1000.0)

let layout_json (prog : Ir.Prog.program) (map : Placement.Address_map.t) =
  let min_addr fid = Array.fold_left min max_int map.block_addr.(fid) in
  let order =
    List.sort
      (fun a b -> compare (min_addr a, a) (min_addr b, b))
      (List.init (Array.length prog.funcs) Fun.id)
  in
  let blocks =
    List.map
      (fun fid ->
        let addrs = map.block_addr.(fid) in
        let labels =
          List.sort
            (fun a b -> compare (addrs.(a), a) (addrs.(b), b))
            (List.init (Array.length addrs) Fun.id)
        in
        ( prog.funcs.(fid).Ir.Prog.name,
          Obs.Json.List (List.map (fun l -> Obs.Json.Int l) labels) ))
      order
  in
  Obs.Json.Obj
    [
      ( "functions",
        Obs.Json.List
          (List.map (fun fid -> Obs.Json.String prog.funcs.(fid).name) order)
      );
      ("blocks", Obs.Json.Obj blocks);
      ("total_bytes", Obs.Json.Int map.total_bytes);
      ("effective_bytes", Obs.Json.Int map.effective_bytes);
    ]

let predicted_json (r : Sim.Driver.result) =
  Obs.Json.Obj
    [
      ("cache", Obs.Json.String (Icache.Config.describe r.config));
      ("accesses", Obs.Json.Int r.accesses);
      ("misses", Obs.Json.Int r.misses);
      ("words_fetched", Obs.Json.Int r.words_fetched);
      ("miss_ratio", Obs.Json.Float r.miss_ratio);
      ("traffic_ratio", Obs.Json.Float r.traffic_ratio);
      ("avg_fetch_words", Obs.Json.Float r.avg_fetch_words);
      ("avg_exec_insns", Obs.Json.Float r.avg_exec_insns);
      ("eat_blocking", Obs.Json.Float r.eat_blocking);
      ("eat_streaming", Obs.Json.Float r.eat_streaming);
      ("eat_streaming_partial", Obs.Json.Float r.eat_streaming_partial);
    ]

let handle_layout t ~id ~bench ~strategy ~cache_config ~profile ~deadline_ms =
  let request = "layout-request" in
  let deadline = Option.value ~default:t.config.deadline_ms deadline_ms in
  if deadline = 0 then
    (* A zero deadline can never be met: deterministic typed timeout. *)
    Protocol.timeout_response ~id ~request
      ~retry_after_ms:(retry_after t deadline)
  else begin
    let t0 = Obs.Clock.now () in
    let entry = Experiments.Context.find t.context bench in
    let strat = find_strategy t strategy in
    let cheap = deadline <= t.config.cheap_threshold_ms in
    (* Resolve the profile source first: a bad profile reference must
       error identically whatever the deadline says. *)
    let source, source_name, source_epoch, source_prof =
      match profile with
      | None -> ("builtin", None, 0, None)
      | Some pname -> (
          (match Store.bench_of t.store pname with
          | Some b when b <> bench ->
              failwith
                (Printf.sprintf "profile %S is bound to benchmark %S, not %S"
                   pname b bench)
          | _ -> ());
          match Store.view t.store pname with
          | Store.Unknown ->
              failwith (Printf.sprintf "unknown profile %S" pname)
          | Store.Fresh { profile; revision; epoch } ->
              ("fresh", Some (pname, revision), epoch, Some profile)
          | Store.Last_good { profile; revision; epoch } ->
              ("last-good", Some (pname, revision), epoch, Some profile)
          | Store.Empty ->
              (* Poisoned (or never-good) with no snapshot: the builtin
                 pipeline profile is the last-good epoch, numbered 0. *)
              ("builtin", None, 0, None))
    in
    let effective, map, fell_back =
      if cheap then
        (* Admission control: the deadline only admits the cheapest
           layout.  Deterministic — no clock involved. *)
        (Placement.Strategy.natural, Experiments.Context.natural_map entry,
         false)
      else
        match source_prof, source_name with
        | Some prof, Some (pname, revision) -> (
            try (strat, custom_map t entry strat ~pname ~revision ~kind:source prof, false)
            with _ ->
              (Placement.Strategy.natural,
               Experiments.Context.natural_map entry, true))
        | _ ->
            let map = Experiments.Context.strategy_map entry strat in
            let fb = Experiments.Context.fell_back entry strat.id in
            ((if fb then Placement.Strategy.natural else strat), map, fb)
    in
    (* Checkpoint: layout built but the deadline already passed — finish
       with the cheapest result rather than burning more of it. *)
    let over_before_sim = (not cheap) && elapsed_ms t0 > deadline in
    let effective, map =
      if over_before_sim then
        (Placement.Strategy.natural, Experiments.Context.natural_map entry)
      else (effective, map)
    in
    let result =
      Experiments.Context.simulate entry cache_config map
        (Experiments.Context.trace entry)
    in
    (* The cheap-admission tier is a deterministic promise — degrade
       and serve — so the wall-clock timeout only applies outside it. *)
    if (not cheap) && elapsed_ms t0 > deadline then
      Protocol.timeout_response ~id ~request
        ~retry_after_ms:(retry_after t deadline)
    else begin
      let tier =
        if cheap || over_before_sim then "cheapest-strategy"
        else if source = "last-good" || (profile <> None && source = "builtin")
        then "last-good-epoch"
        else if fell_back then "natural-fallback"
        else "none"
      in
      if tier <> "none" then Obs.Metrics.incr degraded_total;
      let prog =
        (Experiments.Context.pipeline entry).Placement.Pipeline.program
      in
      Protocol.ok_response ~id ~request
        [
          ("bench", Obs.Json.String bench);
          ("strategy", Obs.Json.String effective.Placement.Strategy.id);
          ("requested_strategy", Obs.Json.String strat.id);
          ("tier", Obs.Json.String tier);
          ( "profile",
            Obs.Json.Obj
              [
                ("source", Obs.Json.String source);
                ( "name",
                  match source_name with
                  | Some (pname, _) -> Obs.Json.String pname
                  | None -> Obs.Json.Null );
                ("epoch", Obs.Json.Int source_epoch);
              ] );
          ("layout", layout_json prog map);
          ("predicted", predicted_json result);
        ]
    end
  end

(* ------------------------------------------------------------------ *)
(* The other request kinds                                             *)
(* ------------------------------------------------------------------ *)

let handle_upload t ~id (u : Protocol.upload) =
  let request = "profile-upload" in
  let entry = Experiments.Context.find t.context u.bench in
  let prog = (Experiments.Context.pipeline entry).Placement.Pipeline.program in
  match Store.upload t.store ~prog u with
  | Error e -> Protocol.error_response ~id ~request e
  | Ok (o : Store.outcome) ->
      Protocol.ok_response ~id ~request
        ([
           ("accepted", Obs.Json.Bool o.accepted);
         ]
        @ (match o.reason with
          | Some r -> [ ("reason", Obs.Json.String r) ]
          | None -> [])
        @ [
            ("epoch", Obs.Json.Int o.epoch);
            ("min_live_epoch", Obs.Json.Int o.min_live);
            ("epochs_live", Obs.Json.Int o.epochs_live);
            ("poisoned", Obs.Json.Bool o.poisoned);
            ("flow_violations", Obs.Json.Int o.flow_violations);
          ])

let handle_lint t ~id ~bench ~strategy ~min_prob =
  let entry = Experiments.Context.find t.context bench in
  let strat = find_strategy t strategy in
  let r = Experiments.Lint_exp.lint_entry ?min_prob entry strat in
  Protocol.ok_response ~id ~request:"lint-request"
    [
      ("bench", Obs.Json.String bench);
      ("fell_back", Obs.Json.Bool r.Experiments.Lint_exp.fell_back);
      ("result", Experiments.Lint_exp.result_json r);
    ]

(* Stats is a barrier: it runs serially between batches and reads the
   emit-time counters, so its numbers are exact for everything already
   on the wire — identical under -j 1 and -j N. *)
let handle_stats t ~id =
  Mutex.protect t.lock @@ fun () ->
  let assoc l =
    Obs.Json.Obj
      (List.sort compare l |> List.map (fun (k, v) -> (k, Obs.Json.Int v)))
  in
  Protocol.ok_response ~id ~request:"stats"
    [
      ("served", Obs.Json.Int t.served);
      ("by_type", assoc t.by_type);
      ("by_status", assoc t.by_status);
      ("profiles", Store.stats_json t.store);
      ( "limits",
        Obs.Json.Obj
          [
            ( "profile_cap",
              match t.config.profile_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ( "memo_cap",
              match t.config.memo_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ( "strategy_cap",
              match t.config.strategy_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ("map_cap", Obs.Json.Int t.config.map_cap);
            ("epoch_window", Obs.Json.Int t.config.epoch_window);
            ("max_batch", Obs.Json.Int t.config.max_batch);
            ("max_request_bytes", Obs.Json.Int t.config.max_request_bytes);
            ("deadline_ms", Obs.Json.Int t.config.deadline_ms);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

(* Total: whatever a request provokes, the answer is a response. *)
let respond t (p : Protocol.parsed) : Obs.Json.t =
  let name = Protocol.request_name p.req in
  try
    Obs.Span.with_ ~stage:("serve." ^ name) @@ fun () ->
    match p.req with
    | Protocol.Layout_request { bench; strategy; config; profile; deadline_ms }
      ->
        handle_layout t ~id:p.id ~bench ~strategy ~cache_config:config
          ~profile ~deadline_ms
    | Protocol.Profile_upload u -> handle_upload t ~id:p.id u
    | Protocol.Lint_request { bench; strategy; min_prob } ->
        handle_lint t ~id:p.id ~bench ~strategy ~min_prob
    | Protocol.Stats -> handle_stats t ~id:p.id
    | Protocol.Shutdown ->
        Protocol.ok_response ~id:p.id ~request:"shutdown"
          [ ("stopping", Obs.Json.Bool true) ]
  with exn ->
    Protocol.error_response ~id:p.id ~request:name (Protocol.error_of_exn exn)

let oversize_response n limit =
  Protocol.error_response ~id:Obs.Json.Null ~request:"unknown"
    (Protocol.usage_error
       (Printf.sprintf "request too large: %d bytes (limit %d)" n limit))

(* The serial total function: one line in, one response out.  What the
   chaos harness and the unit tests drive directly. *)
let handle_line t line : Obs.Json.t * bool =
  let n = String.length line in
  if n > t.config.max_request_bytes then
    (oversize_response n t.config.max_request_bytes, false)
  else
    match Protocol.parse_request ~max_bytes:t.config.max_request_bytes line with
    | Error (id, e) ->
        (Protocol.error_response ~id ~request:"unknown" e, false)
    | Ok p ->
        let stop = match p.req with Protocol.Shutdown -> true | _ -> false in
        (respond t p, stop)

(* ------------------------------------------------------------------ *)
(* The batched serve loop                                              *)
(* ------------------------------------------------------------------ *)

type job =
  | Compute of Protocol.parsed  (** read-only: dispatched across the pool *)
  | Immediate of Obs.Json.t  (** already answered (parse/size errors) *)

type item = Job of job | Barrier of Protocol.parsed

let classify t line : item option =
  if String.trim line = "" then None
  else
    let n = String.length line in
    if n > t.config.max_request_bytes then
      Some (Job (Immediate (oversize_response n t.config.max_request_bytes)))
    else
      match
        Protocol.parse_request ~max_bytes:t.config.max_request_bytes line
      with
      | Error (id, e) ->
          Some (Job (Immediate (Protocol.error_response ~id ~request:"unknown" e)))
      | Ok p -> (
          match p.req with
          | Protocol.Layout_request _ | Protocol.Lint_request _ ->
              Some (Job (Compute p))
          | Protocol.Profile_upload _ | Protocol.Stats | Protocol.Shutdown ->
              Some (Barrier p))

let account t resp =
  Mutex.protect t.lock @@ fun () ->
  let get j key =
    match Obs.Json.member key j with
    | Some (Obs.Json.String s) -> s
    | _ -> "unknown"
  in
  let bump l k =
    match List.assoc_opt k l with
    | Some n -> (k, n + 1) :: List.remove_assoc k l
    | None -> (k, 1) :: l
  in
  t.served <- t.served + 1;
  t.by_type <- bump t.by_type (get resp "request");
  let status = get resp "status" in
  t.by_status <- bump t.by_status status;
  Obs.Metrics.incr requests_total;
  if status = "error" then Obs.Metrics.incr errors_total;
  if status = "timeout" then Obs.Metrics.incr timeouts_total

(* Generic loop over a line producer: collects read-only jobs into
   constant-width batches, fans each batch across the default pool,
   emits in input order, and handles barriers serially in between. *)
let serve_generic t ~(next : unit -> string option) ~(emit : Obs.Json.t -> unit)
    =
  let emit_accounted resp =
    account t resp;
    emit resp
  in
  let flush jobs =
    let jobs = List.rev jobs in
    let run = function
      | Compute p -> respond t p
      | Immediate r -> r
    in
    let responses =
      match Placement.Pool.default () with
      | Some pool when Placement.Pool.lanes pool > 1 && List.length jobs > 1 ->
          Placement.Pool.map pool run jobs
      | _ -> List.map run jobs
    in
    List.iter emit_accounted responses
  in
  let rec loop pending npending =
    if t.stopped then flush pending
    else
      match next () with
      | None ->
          flush pending  (* EOF: answer everything already read *)
      | Some line -> (
          match classify t line with
          | None -> loop pending npending
          | Some (Job j) ->
              let pending = j :: pending and npending = npending + 1 in
              if npending >= t.config.max_batch then begin
                flush pending;
                loop [] 0
              end
              else loop pending npending
          | Some (Barrier p) ->
              flush pending;
              emit_accounted (respond t p);
              (match p.req with
              | Protocol.Shutdown -> t.stopped <- true
              | _ -> ());
              if t.stopped then () else loop [] 0)
  in
  loop [] 0

(* Bounded line reader: never buffers more than the limit; an over-long
   line is consumed to its newline and reported by total length so the
   daemon can answer it with a structured error. *)
let read_bounded ic limit : string option =
  let buf = Buffer.create 256 in
  let over = ref 0 in
  let fin = ref false in
  let eof = ref false in
  while not !fin do
    match In_channel.input_char ic with
    | None ->
        fin := true;
        if Buffer.length buf = 0 && !over = 0 then eof := true
    | Some '\n' -> fin := true
    | Some _ when !over > 0 -> incr over
    | Some c ->
        if Buffer.length buf >= limit then over := Buffer.length buf + 1
        else Buffer.add_char buf c
  done;
  if !eof then None
  else if !over > 0 then
    (* Synthesize a line that classifies as oversized without carrying
       the payload. *)
    Some (String.make (limit + 1) ' ')
  else Some (Buffer.contents buf)

let serve_channels t ic oc =
  serve_generic t
    ~next:(fun () -> read_bounded ic t.config.max_request_bytes)
    ~emit:(fun resp ->
      (* [to_channel] already terminates the line. *)
      Obs.Json.to_channel oc resp;
      flush oc)

let run_lines t lines : Obs.Json.t list =
  let remaining = ref lines in
  let out = ref [] in
  serve_generic t
    ~next:(fun () ->
      match !remaining with
      | [] -> None
      | l :: rest ->
          remaining := rest;
          Some l)
    ~emit:(fun resp -> out := resp :: !out);
  List.rev !out

let stopped t = t.stopped

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      while not t.stopped do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* A client disconnecting mid-stream must not kill the daemon:
           treat any channel failure as that connection ending. *)
        (try serve_channels t ic oc with Sys_error _ | End_of_file -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)
