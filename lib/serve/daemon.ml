(* The layout-service daemon.

   One JSON request per line in, one JSON response per line out, in
   input order.  Robustness is the design axis: every failure a request
   can provoke — malformed JSON, unknown schema, a strategy that raises,
   an invalid cache geometry, an oversized payload — becomes a
   structured error response on that request alone; the daemon never
   dies and never skips a response.

   Parallelism and determinism: requests are read into bounded batches
   dispatched across the default {!Placement.Pool}.  A batch holds only
   read-only work (layout/lint/parse errors); profile-upload, stats and
   shutdown are barriers handled serially between batches.  Responses
   are emitted strictly in input order, accounting happens at emit time
   on one domain, no response contains a wall-clock value, and the batch
   width is a constant (not lane-dependent) — so `-j 1` and `-j N` runs
   are byte-identical, which the golden-vector replay checker enforces
   with a cmp-level comparison.

   Graceful degradation tiers, reported per response as ["tier"]:
   - ["none"]: served exactly as asked.
   - ["natural-fallback"]: the strategy raised; natural layout served.
   - ["cheapest-strategy"]: the deadline admits only the cheapest
     layout; natural layout served.
   - ["last-good-epoch"]: the named profile is poisoned (or has no
     usable snapshot yet); the last flow-conserving snapshot — or the
     builtin pipeline profile, as epoch 0 — served instead. *)

let requests_total =
  Obs.Metrics.counter "serve.requests" ~help:"Requests answered"

let errors_total =
  Obs.Metrics.counter "serve.errors" ~help:"Requests answered with an error"

let timeouts_total =
  Obs.Metrics.counter "serve.timeouts"
    ~help:"Requests answered with a timeout"

let degraded_total =
  Obs.Metrics.counter "serve.degraded"
    ~help:"Requests served in a degraded tier"

let map_evictions =
  Obs.Metrics.counter "serve.map_evictions"
    ~help:"Custom-profile address maps dropped by the LRU cap"

let notifications_total =
  Obs.Metrics.counter "serve.notifications"
    ~help:"Push staleness notifications emitted to subscribers"

(* Latency/queue/batch histograms.  Registered lazily per request type;
   all no-ops while the metrics registry is disabled (the replay path),
   so the determinism contract is untouched. *)
let latency_hist name =
  Obs.Metrics.histogram
    ("serve.latency." ^ name ^ ".seconds")
    ~help:"Wall-clock handling time per request of this type"

let queue_wait_hist =
  Obs.Metrics.histogram "serve.queue_wait.seconds"
    ~help:"Read-to-dispatch wait per request"

let batch_size_hist =
  Obs.Metrics.histogram "serve.batch_size"
    ~help:"Read-only jobs per pool flush"

type config = {
  deadline_ms : int;
  cheap_threshold_ms : int;
  retry_base_ms : int;
  max_request_bytes : int;
  max_batch : int;
  profile_cap : int option;
  epoch_window : int;
  memo_cap : int option;
  strategy_cap : int option;
  map_cap : int;
  scale : int;
  benches : string list option;
  extra_strategies : Placement.Strategy.t list;
  slow_ms : int option;
      (* requests slower than this dump their span tree to the log *)
}

let default_config =
  {
    deadline_ms = 30_000;
    cheap_threshold_ms = 5;
    retry_base_ms = 25;
    max_request_bytes = 1 lsl 20;
    max_batch = 8;
    profile_cap = Some 64;
    epoch_window = 4;
    memo_cap = Some 256;
    strategy_cap = Some 16;
    map_cap = 32;
    scale = 1;
    benches = None;
    extra_strategies = [];
    slow_ms = None;
  }

type t = {
  config : config;
  context : Experiments.Context.t;
  store : Store.t;
  started_at : float;  (* wall clock at create; stats v2 uptime *)
  lock : Mutex.t;  (* guards map_cache and the emit-time counters *)
  mutable map_cache :
    ((string * int * string * string) * Placement.Address_map.t) list;
      (* (profile, revision, source kind, strategy id) -> map; MRU first *)
  mutable absint_cache :
    ((string * string) * Analysis.Absint.t) list;
      (* (bench, cache geometry) -> natural-map abstract interpretation;
         MRU first, capped like map_cache.  The classification depends
         only on the program, the natural map and the geometry — never
         on profile weights — so one analysis serves every profile
         revision of a benchmark. *)
  mutable map_evicted : int;
      (* daemon-local twin of [map_evictions]: deterministic even with
         the metrics registry disabled, so stats v2 can report it on
         the replay path *)
  mutable served : int;
  mutable by_type : (string * int) list;
  mutable by_status : (string * int) list;
  mutable by_tier : (string * int) list;
  mutable next_trace : int;
      (* trace-id source; bumped only by the single-threaded reader
         (classify / handle_line), so ids are deterministic in input
         order at any -j *)
  mutable subs : string list option list;
      (* subscription filters in arrival order; None = every profile *)
  mutable notifications_sent : int;
  notified : (string * string * int, unit) Hashtbl.t;
      (* (profile, strategy|kind, epoch) already pushed — the
         exactly-once guard; pruned below the live epoch window *)
  mutable last_upload : (string * Store.outcome) option;
      (* set by the upload barrier, drained (or dropped) by the caller *)
  mutable stopped : bool;
}

let create ?(config = default_config) () =
  if config.map_cap < 1 then invalid_arg "Daemon.create: map_cap must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Daemon.create: max_batch must be >= 1";
  let context =
    Experiments.Context.create ~scale:config.scale ?memo_cap:config.memo_cap
      ?strategy_cap:config.strategy_cap ?names:config.benches ()
  in
  let store = Store.create ?cap:config.profile_cap ~window:config.epoch_window () in
  {
    config;
    context;
    store;
    started_at = Obs.Clock.now ();
    lock = Mutex.create ();
    map_cache = [];
    absint_cache = [];
    map_evicted = 0;
    served = 0;
    by_type = [];
    by_status = [];
    by_tier = [];
    next_trace = 0;
    subs = [];
    notifications_sent = 0;
    notified = Hashtbl.create 64;
    last_upload = None;
    stopped = false;
  }

(* Trace ids: assigned at read/classify time by the single-threaded
   reader, so the id of the Nth request line is always t-%06d of N —
   byte-identical across -j levels and replays. *)
let fresh_trace t =
  t.next_trace <- t.next_trace + 1;
  Printf.sprintf "t-%06d" t.next_trace

let with_trace trace = function
  | Obs.Json.Obj fields ->
      Obs.Json.Obj (fields @ [ ("trace", Obs.Json.String trace) ])
  | j -> j

let context t = t.context
let store t = t.store

let find_strategy t id =
  match
    List.find_opt
      (fun s -> s.Placement.Strategy.id = id)
      t.config.extra_strategies
  with
  | Some s -> s
  | None -> Placement.Strategy.find id

(* ------------------------------------------------------------------ *)
(* Custom-profile address maps                                         *)
(* ------------------------------------------------------------------ *)

(* Maps derived from uploaded profiles are cached MRU-first under a
   key that pins the store revision, so the same snapshot always yields
   the same physical map — which is what keeps the context's simulation
   memo (keyed on physical map identity) hot across requests. *)
let cached_map t ~key build =
  Mutex.protect t.lock @@ fun () ->
  match List.assoc_opt key t.map_cache with
  | Some m ->
      t.map_cache <- (key, m) :: List.remove_assoc key t.map_cache;
      m
  | None ->
      let m = build () in
      let cache = (key, m) :: t.map_cache in
      if List.length cache > t.config.map_cap then begin
        t.map_cache <- List.filteri (fun i _ -> i < t.config.map_cap) cache;
        t.map_evicted <- t.map_evicted + 1;
        Obs.Metrics.incr map_evictions
      end
      else t.map_cache <- cache;
      m

(* Mirror of [Placement.Pipeline.map_for], over an uploaded profile
   instead of the pipeline's own. *)
let custom_map t entry (strat : Placement.Strategy.t) ~pname ~revision ~kind
    prof =
  let pipe = Experiments.Context.pipeline entry in
  let prog = pipe.Placement.Pipeline.program in
  let key = (pname, revision, kind, strat.id) in
  cached_map t ~key (fun () ->
      let nfuncs = Array.length prog.Ir.Prog.funcs in
      let layouts =
        Array.init nfuncs (fun fid ->
            strat.layout prog.funcs.(fid)
              (Placement.Weight.cfg_of_profile prof fid))
      in
      let order =
        strat.global nfuncs ~entry:prog.entry
          (Placement.Weight.call_of_profile prof)
      in
      Placement.Address_map.build prog ~layouts ~order)

(* ------------------------------------------------------------------ *)
(* Certified bounds for the cheap-admission tier                       *)
(* ------------------------------------------------------------------ *)

(* Natural-map abstract interpretation, memoized per (bench, geometry)
   under the same lock and cap discipline as the custom-map cache.  The
   first request at a new geometry pays the fixpoint (a few ms on the
   paper's programs); every later one is a list lookup, which is what
   lets a <= 5ms deadline carry a certified answer at all. *)
let cached_absint t entry cache_config =
  let key =
    (Experiments.Context.name entry, Icache.Config.describe cache_config)
  in
  Mutex.protect t.lock @@ fun () ->
  match List.assoc_opt key t.absint_cache with
  | Some a ->
      t.absint_cache <- (key, a) :: List.remove_assoc key t.absint_cache;
      a
  | None ->
      let prog =
        (Experiments.Context.pipeline entry).Placement.Pipeline.program
      in
      let a =
        Analysis.Absint.analyze cache_config
          (Experiments.Context.natural_map entry)
          prog
      in
      let cache = (key, a) :: t.absint_cache in
      t.absint_cache <-
        (if List.length cache > t.config.map_cap then
           List.filteri (fun i _ -> i < t.config.map_cap) cache
         else cache);
      a

let certified_json cache_config (a : Analysis.Absint.t)
    (iv : Analysis.Absint.interval) =
  let tot = Analysis.Absint.totals a in
  let ratio n =
    if iv.Analysis.Absint.fetches = 0 then 0.0
    else float_of_int n /. float_of_int iv.Analysis.Absint.fetches
  in
  Obs.Json.Obj
    [
      ("cache", Obs.Json.String (Icache.Config.describe cache_config));
      ("misses_lo", Obs.Json.Int iv.Analysis.Absint.lo);
      ("misses_hi", Obs.Json.Int iv.Analysis.Absint.hi);
      ("fetches", Obs.Json.Int iv.Analysis.Absint.fetches);
      ("miss_ratio_lo", Obs.Json.Float (ratio iv.Analysis.Absint.lo));
      ("miss_ratio_hi", Obs.Json.Float (ratio iv.Analysis.Absint.hi));
      ( "blocks_classified",
        Obs.Json.Int tot.Analysis.Absint.t_blocks_classified );
      ("blocks", Obs.Json.Int tot.Analysis.Absint.t_blocks);
      ( "gated",
        match a.Analysis.Absint.gated with
        | Some reason -> Obs.Json.String reason
        | None -> Obs.Json.Null );
    ]

(* ------------------------------------------------------------------ *)
(* layout-request                                                      *)
(* ------------------------------------------------------------------ *)

let retry_after t deadline =
  min 10_000 (max t.config.retry_base_ms (2 * deadline))

let elapsed_ms t0 = int_of_float ((Obs.Clock.now () -. t0) *. 1000.0)

let layout_json (prog : Ir.Prog.program) (map : Placement.Address_map.t) =
  let min_addr fid = Array.fold_left min max_int map.block_addr.(fid) in
  let order =
    List.sort
      (fun a b -> compare (min_addr a, a) (min_addr b, b))
      (List.init (Array.length prog.funcs) Fun.id)
  in
  let blocks =
    List.map
      (fun fid ->
        let addrs = map.block_addr.(fid) in
        let labels =
          List.sort
            (fun a b -> compare (addrs.(a), a) (addrs.(b), b))
            (List.init (Array.length addrs) Fun.id)
        in
        ( prog.funcs.(fid).Ir.Prog.name,
          Obs.Json.List (List.map (fun l -> Obs.Json.Int l) labels) ))
      order
  in
  Obs.Json.Obj
    [
      ( "functions",
        Obs.Json.List
          (List.map (fun fid -> Obs.Json.String prog.funcs.(fid).name) order)
      );
      ("blocks", Obs.Json.Obj blocks);
      ("total_bytes", Obs.Json.Int map.total_bytes);
      ("effective_bytes", Obs.Json.Int map.effective_bytes);
    ]

let predicted_json (r : Sim.Driver.result) =
  Obs.Json.Obj
    [
      ("cache", Obs.Json.String (Icache.Config.describe r.config));
      ("accesses", Obs.Json.Int r.accesses);
      ("misses", Obs.Json.Int r.misses);
      ("words_fetched", Obs.Json.Int r.words_fetched);
      ("miss_ratio", Obs.Json.Float r.miss_ratio);
      ("traffic_ratio", Obs.Json.Float r.traffic_ratio);
      ("avg_fetch_words", Obs.Json.Float r.avg_fetch_words);
      ("avg_exec_insns", Obs.Json.Float r.avg_exec_insns);
      ("eat_blocking", Obs.Json.Float r.eat_blocking);
      ("eat_streaming", Obs.Json.Float r.eat_streaming);
      ("eat_streaming_partial", Obs.Json.Float r.eat_streaming_partial);
    ]

let handle_layout t ~id ~bench ~strategy ~cache_config ~profile ~deadline_ms =
  let request = "layout-request" in
  let deadline = Option.value ~default:t.config.deadline_ms deadline_ms in
  if deadline = 0 then
    (* A zero deadline can never be met: deterministic typed timeout. *)
    Protocol.timeout_response ~id ~request
      ~retry_after_ms:(retry_after t deadline)
  else begin
    let t0 = Obs.Clock.now () in
    let entry, strat, cheap =
      Obs.Span.with_ ~stage:"serve.admission"
        ~attrs:
          [ ("deadline_ms", string_of_int deadline); ("strategy", strategy) ]
      @@ fun () ->
      let entry = Experiments.Context.find t.context bench in
      let strat = find_strategy t strategy in
      (entry, strat, deadline <= t.config.cheap_threshold_ms)
    in
    (* Resolve the profile source first: a bad profile reference must
       error identically whatever the deadline says. *)
    let source, source_name, source_epoch, source_prof =
      Obs.Span.with_ ~stage:"serve.store-lookup"
        ~attrs:[ ("profile", Option.value ~default:"-" profile) ]
      @@ fun () ->
      match profile with
      | None -> ("builtin", None, 0, None)
      | Some pname -> (
          (match Store.bench_of t.store pname with
          | Some b when b <> bench ->
              failwith
                (Printf.sprintf "profile %S is bound to benchmark %S, not %S"
                   pname b bench)
          | _ -> ());
          match Store.view t.store pname with
          | Store.Unknown ->
              failwith (Printf.sprintf "unknown profile %S" pname)
          | Store.Fresh { profile; revision; epoch } ->
              ("fresh", Some (pname, revision), epoch, Some profile)
          | Store.Last_good { profile; revision; epoch } ->
              ("last-good", Some (pname, revision), epoch, Some profile)
          | Store.Empty ->
              (* Poisoned (or never-good) with no snapshot: the builtin
                 pipeline profile is the last-good epoch, numbered 0. *)
              ("builtin", None, 0, None))
    in
    let effective, map, fell_back =
      Obs.Span.with_ ~stage:"serve.strategy-map" @@ fun () ->
      if cheap then
        (* Admission control: the deadline only admits the cheapest
           layout.  Deterministic — no clock involved. *)
        (Placement.Strategy.natural, Experiments.Context.natural_map entry,
         false)
      else
        match source_prof, source_name with
        | Some prof, Some (pname, revision) -> (
            try (strat, custom_map t entry strat ~pname ~revision ~kind:source prof, false)
            with _ ->
              (Placement.Strategy.natural,
               Experiments.Context.natural_map entry, true))
        | _ ->
            let map = Experiments.Context.strategy_map entry strat in
            let fb = Experiments.Context.fell_back entry strat.id in
            ((if fb then Placement.Strategy.natural else strat), map, fb)
    in
    (* Checkpoint: layout built but the deadline already passed — finish
       with the cheapest result rather than burning more of it. *)
    let over_before_sim = (not cheap) && elapsed_ms t0 > deadline in
    let effective, map =
      if over_before_sim then
        (Placement.Strategy.natural, Experiments.Context.natural_map entry)
      else (effective, map)
    in
    (* The cheap tier never replays a trace: it answers with the
       memoized abstract interpretation's certified miss interval over
       the natural layout — a sound promise, not a simulation — under
       whichever profile weights the request resolved to (uploaded
       snapshot or builtin).  Every other tier simulates as before. *)
    let prediction =
      if cheap then
        Obs.Span.with_ ~stage:"serve.certify"
          ~attrs:[ ("cache", Icache.Config.describe cache_config) ]
        @@ fun () ->
        let prof =
          match source_prof with
          | Some p -> p
          | None ->
              (Experiments.Context.pipeline entry).Placement.Pipeline.profile
        in
        let a = cached_absint t entry cache_config in
        let iv =
          Analysis.Absint.interval
            ~entries:
              (Analysis.Absint.profile_entries a
                 ~weights:(Placement.Weight.cfg_of_profile prof))
            a
            ~counts:(Vm.Profile.block_weight prof)
        in
        ("certified", certified_json cache_config a iv)
      else
        let result =
          Obs.Span.with_ ~stage:"serve.simulate"
            ~attrs:[ ("cache", Icache.Config.describe cache_config) ]
          @@ fun () ->
          Experiments.Context.simulate entry cache_config map
            (Experiments.Context.trace entry)
        in
        ("predicted", predicted_json result)
    in
    (* The cheap-admission tier is a deterministic promise — degrade
       and serve — so the wall-clock timeout only applies outside it. *)
    if (not cheap) && elapsed_ms t0 > deadline then
      Protocol.timeout_response ~id ~request
        ~retry_after_ms:(retry_after t deadline)
    else begin
      let tier =
        if cheap || over_before_sim then "cheapest-strategy"
        else if source = "last-good" || (profile <> None && source = "builtin")
        then "last-good-epoch"
        else if fell_back then "natural-fallback"
        else "none"
      in
      if tier <> "none" then Obs.Metrics.incr degraded_total;
      (* Attach the outcome to the enclosing serve.request span. *)
      Obs.Span.add_attr "tier" tier;
      Obs.Span.add_attr "strategy" effective.Placement.Strategy.id;
      let prog =
        (Experiments.Context.pipeline entry).Placement.Pipeline.program
      in
      Protocol.ok_response ~id ~request
        [
          ("bench", Obs.Json.String bench);
          ("strategy", Obs.Json.String effective.Placement.Strategy.id);
          ("requested_strategy", Obs.Json.String strat.id);
          ("tier", Obs.Json.String tier);
          ( "profile",
            Obs.Json.Obj
              [
                ("source", Obs.Json.String source);
                ( "name",
                  match source_name with
                  | Some (pname, _) -> Obs.Json.String pname
                  | None -> Obs.Json.Null );
                ("epoch", Obs.Json.Int source_epoch);
              ] );
          ("layout", layout_json prog map);
          prediction;
        ]
    end
  end

(* ------------------------------------------------------------------ *)
(* The other request kinds                                             *)
(* ------------------------------------------------------------------ *)

let handle_upload t ~id (u : Protocol.upload) =
  let request = "profile-upload" in
  let entry = Experiments.Context.find t.context u.bench in
  let prog = (Experiments.Context.pipeline entry).Placement.Pipeline.program in
  match Store.upload t.store ~prog u with
  | Error e -> Protocol.error_response ~id ~request e
  | Ok (o : Store.outcome) ->
      (* Uploads are barriers, so this write is serial; the serve loop
         drains it into staleness notifications right after emitting
         this response. *)
      if o.accepted then t.last_upload <- Some (u.profile, o);
      Protocol.ok_response ~id ~request
        ([
           ("accepted", Obs.Json.Bool o.accepted);
         ]
        @ (match o.reason with
          | Some r -> [ ("reason", Obs.Json.String r) ]
          | None -> [])
        @ [
            ("epoch", Obs.Json.Int o.epoch);
            ("min_live_epoch", Obs.Json.Int o.min_live);
            ("epochs_live", Obs.Json.Int o.epochs_live);
            ("poisoned", Obs.Json.Bool o.poisoned);
            ("flow_violations", Obs.Json.Int o.flow_violations);
            ("revision", Obs.Json.Int o.revision);
          ])

let handle_lint t ~id ~bench ~strategy ~min_prob =
  let entry = Experiments.Context.find t.context bench in
  let strat = find_strategy t strategy in
  let r = Experiments.Lint_exp.lint_entry ?min_prob entry strat in
  Protocol.ok_response ~id ~request:"lint-request"
    [
      ("bench", Obs.Json.String bench);
      ("fell_back", Obs.Json.Bool r.Experiments.Lint_exp.fell_back);
      ("result", Experiments.Lint_exp.result_json r);
    ]

(* Quantile summary of one latency-class histogram, in milliseconds.
   With the metrics registry disabled (the replay path) every field is
   exactly zero, keeping stats v2 free of wall-clock values there. *)
let quantiles_ms_json h =
  let ms p = Obs.Json.Float (1000.0 *. Obs.Metrics.hist_quantile h p) in
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int (Obs.Metrics.hist_count h));
      ("p50_ms", ms 0.50);
      ("p90_ms", ms 0.90);
      ("p99_ms", ms 0.99);
    ]

(* Stats is a barrier: it runs serially between batches and reads the
   emit-time counters, so its numbers are exact for everything already
   on the wire — identical under -j 1 and -j N. *)
let handle_stats t ~id =
  Mutex.protect t.lock @@ fun () ->
  let assoc l =
    Obs.Json.Obj
      (List.sort compare l |> List.map (fun (k, v) -> (k, Obs.Json.Int v)))
  in
  let latency_rows =
    (* One row per request type already served (deterministic sorted
       order), plus the all-types aggregate. *)
    List.sort compare (List.map fst t.by_type) @ [ "all" ]
    |> List.map (fun name -> (name, quantiles_ms_json (latency_hist name)))
  in
  Protocol.ok_response ~id ~request:"stats"
    [
      ("stats_version", Obs.Json.Int 2);
      ( "uptime_seconds",
        (* Wall clock, so zero unless telemetry is on: replayed stats
           responses must stay byte-identical. *)
        Obs.Json.Float
          (if Obs.Metrics.enabled () then Obs.Clock.now () -. t.started_at
           else 0.0) );
      ("served", Obs.Json.Int t.served);
      ("by_type", assoc t.by_type);
      ("by_status", assoc t.by_status);
      ("by_tier", assoc t.by_tier);
      ("subscriptions", Obs.Json.Int (List.length t.subs));
      ("notifications", Obs.Json.Int t.notifications_sent);
      ( "evictions",
        Obs.Json.Obj
          [
            ("profiles", Obs.Json.Int (Store.evictions_total t.store));
            ("maps", Obs.Json.Int t.map_evicted);
            (* Per-context count, not the process-global metrics
               counter: stats stay deterministic and daemon-local. *)
            ( "memo",
              Obs.Json.Int
                (List.fold_left
                   (fun acc e ->
                     acc + e.Experiments.Context.memo_evicted)
                   0
                   (Experiments.Context.entries t.context)) );
          ] );
      ("latency", Obs.Json.Obj latency_rows);
      ("queue_wait", quantiles_ms_json queue_wait_hist);
      ( "batch_size",
        Obs.Json.Obj
          [
            ("count", Obs.Json.Int (Obs.Metrics.hist_count batch_size_hist));
            ( "p50",
              Obs.Json.Float (Obs.Metrics.hist_quantile batch_size_hist 0.50)
            );
            ( "p99",
              Obs.Json.Float (Obs.Metrics.hist_quantile batch_size_hist 0.99)
            );
          ] );
      ("profiles", Store.stats_json t.store);
      ( "limits",
        Obs.Json.Obj
          [
            ( "profile_cap",
              match t.config.profile_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ( "memo_cap",
              match t.config.memo_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ( "strategy_cap",
              match t.config.strategy_cap with
              | Some c -> Obs.Json.Int c
              | None -> Obs.Json.Null );
            ("map_cap", Obs.Json.Int t.config.map_cap);
            ("epoch_window", Obs.Json.Int t.config.epoch_window);
            ("max_batch", Obs.Json.Int t.config.max_batch);
            ("max_request_bytes", Obs.Json.Int t.config.max_request_bytes);
            ("deadline_ms", Obs.Json.Int t.config.deadline_ms);
          ] );
    ]

(* Subscribe is a barrier: registering the filter between batches means
   every later upload's notifications are observed, none racily
   missed.  Duplicate filters collapse, so a client re-subscribing in a
   retry loop cannot grow the daemon. *)
let handle_subscribe t ~id ~profiles =
  Mutex.protect t.lock @@ fun () ->
  if not (List.mem profiles t.subs) then t.subs <- t.subs @ [ profiles ];
  Protocol.ok_response ~id ~request:"subscribe"
    [
      ( "subscribed",
        match profiles with
        | None -> Obs.Json.String "all"
        | Some l -> Obs.Json.List (List.map (fun p -> Obs.Json.String p) l) );
      ("active_subscriptions", Obs.Json.Int (List.length t.subs));
    ]

(* Health verdict from the degradation counters: degraded while any
   profile is poisoned or any request was served by natural-fallback
   (a strategy raised — a bug or an adversarial strategy, not an
   admission decision); ready otherwise.  Deterministic — counts only,
   no clock. *)
let handle_health t ~id =
  let poisoned = Store.poisoned_count t.store in
  Mutex.protect t.lock @@ fun () ->
  let tier k = Option.value ~default:0 (List.assoc_opt k t.by_tier) in
  let fallbacks = tier "natural-fallback" in
  let degraded = poisoned > 0 || fallbacks > 0 in
  Protocol.ok_response ~id ~request:"health"
    [
      ("verdict", Obs.Json.String (if degraded then "degraded" else "ready"));
      ("ready", Obs.Json.Bool (not degraded));
      ( "checks",
        Obs.Json.Obj
          [
            ("poisoned_profiles", Obs.Json.Int poisoned);
            ("natural_fallbacks", Obs.Json.Int fallbacks);
            ("last_good_served", Obs.Json.Int (tier "last-good-epoch"));
            ("cheapest_served", Obs.Json.Int (tier "cheapest-strategy"));
            ( "timeouts",
              Obs.Json.Int
                (Option.value ~default:0 (List.assoc_opt "timeout" t.by_status))
            );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Push-style staleness notifications                                  *)
(* ------------------------------------------------------------------ *)

(* After an accepted upload (a barrier), every cached address map for
   that profile at an older revision is stale.  Each (profile,
   strategy|kind, epoch) is pushed at most once — the [notified] table
   is the exactly-once guard — and only while some subscription filter
   matches, so an unobserved staleness costs nothing.  Runs serially
   right after the upload's own response, keeping notification order
   deterministic at any -j. *)
let take_notifications t ~trace : Obs.Json.t list =
  match t.last_upload with
  | None -> []
  | Some (pname, o) ->
      t.last_upload <- None;
      let subscribed =
        List.exists
          (function None -> true | Some l -> List.mem pname l)
          t.subs
      in
      if not subscribed then []
      else begin
        (* Forget guards below the live window; stale-epoch uploads
           can never notify again, so the table stays bounded. *)
        let drop =
          Hashtbl.fold
            (fun (p, sk, e) () acc ->
              if p = pname && e < o.Store.min_live then (p, sk, e) :: acc
              else acc)
            t.notified []
        in
        List.iter (fun k -> Hashtbl.remove t.notified k) drop;
        let stale =
          Mutex.protect t.lock (fun () ->
              List.filter_map
                (fun ((p, rev, kind, strat), _) ->
                  if p = pname && rev < o.Store.revision then
                    Some (strat, kind, rev)
                  else None)
                t.map_cache)
          |> List.sort_uniq compare
          (* One staleness fact per (strategy, kind): several cached
             revisions of the same map collapse to the newest. *)
          |> List.fold_left
               (fun acc (strat, kind, rev) ->
                 match acc with
                 | (s, k, r) :: tl when s = strat && k = kind ->
                     (s, k, max r rev) :: tl
                 | _ -> (strat, kind, rev) :: acc)
               []
          |> List.rev
          |> List.filter (fun (strat, kind, _) ->
                 not
                   (Hashtbl.mem t.notified
                      (pname, strat ^ "|" ^ kind, o.Store.epoch)))
        in
        if stale = [] then []
        else begin
          List.iter
            (fun (strat, kind, _) ->
              Hashtbl.replace t.notified
                (pname, strat ^ "|" ^ kind, o.Store.epoch)
                ())
            stale;
          t.notifications_sent <- t.notifications_sent + 1;
          Obs.Metrics.incr notifications_total;
          [
            Protocol.stale_notification ~trace ~profile:pname
              ~epoch:o.Store.epoch ~revision:o.Store.revision
              ~poisoned:o.Store.poisoned ~stale;
          ]
        end
      end

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

(* One request's span tree, indented by nesting depth — what --slow-ms
   dumps for an offending request. *)
let span_tree_lines (spans : Obs.Span.event list) =
  List.sort (fun (a : Obs.Span.event) b -> compare a.start_us b.start_us) spans
  |> List.map (fun (e : Obs.Span.event) ->
         Printf.sprintf "%s%s %.2f ms%s"
           (String.make (2 * e.depth) ' ')
           e.name (e.dur_us /. 1000.0)
           (match e.attrs with
           | [] -> ""
           | attrs ->
               " ["
               ^ String.concat ", "
                   (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
               ^ "]"))

(* Total: whatever a request provokes, the answer is a response.  The
   whole dispatch runs inside a [serve.request] span (child spans mark
   parse/admission/store-lookup/strategy-map/simulate), feeds the
   per-type latency histograms, and — past --slow-ms — dumps the
   request's span tree to the log. *)
let respond t ~trace ?enq (p : Protocol.parsed) : Obs.Json.t =
  let name = Protocol.request_name p.req in
  let t0 = Obs.Clock.now () in
  (match enq with
  | Some at when Obs.Metrics.enabled () ->
      Obs.Metrics.observe queue_wait_hist (t0 -. at)
  | _ -> ());
  let resp, spans =
    Obs.Span.collect @@ fun () ->
    try
      Obs.Span.with_ ~stage:"serve.request"
        ~attrs:[ ("trace", trace); ("type", name) ]
      @@ fun () ->
      match p.req with
      | Protocol.Layout_request
          { bench; strategy; config; profile; deadline_ms } ->
          handle_layout t ~id:p.id ~bench ~strategy ~cache_config:config
            ~profile ~deadline_ms
      | Protocol.Profile_upload u -> handle_upload t ~id:p.id u
      | Protocol.Lint_request { bench; strategy; min_prob } ->
          handle_lint t ~id:p.id ~bench ~strategy ~min_prob
      | Protocol.Stats -> handle_stats t ~id:p.id
      | Protocol.Subscribe { profiles } ->
          handle_subscribe t ~id:p.id ~profiles
      | Protocol.Health -> handle_health t ~id:p.id
      | Protocol.Shutdown ->
          Protocol.ok_response ~id:p.id ~request:"shutdown"
            [ ("stopping", Obs.Json.Bool true) ]
    with exn ->
      Protocol.error_response ~id:p.id ~request:name (Protocol.error_of_exn exn)
  in
  let dt = Obs.Clock.now () -. t0 in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.observe (latency_hist name) dt;
    Obs.Metrics.observe (latency_hist "all") dt
  end;
  (match t.config.slow_ms with
  | Some ms when dt *. 1000.0 > float_of_int ms ->
      Obs.Log.warn_raw
        (String.concat "\n"
           (Printf.sprintf "slow request %s (%s): %.2f ms (limit %d ms)" trace
              name (dt *. 1000.0) ms
           :: span_tree_lines spans))
  | _ -> ());
  with_trace trace resp

let oversize_response n limit =
  Protocol.error_response ~id:Obs.Json.Null ~request:"unknown"
    (Protocol.usage_error
       (Printf.sprintf "request too large: %d bytes (limit %d)" n limit))

(* The serial total function: one line in, one response out.  What the
   chaos harness and the unit tests drive directly.  Staleness
   notifications are a serve-loop concept: an upload handled here drops
   its pending notification without emitting it or consuming the
   exactly-once guard. *)
let handle_line t line : Obs.Json.t * bool =
  let trace = fresh_trace t in
  let n = String.length line in
  if n > t.config.max_request_bytes then
    (with_trace trace (oversize_response n t.config.max_request_bytes), false)
  else
    match Protocol.parse_request ~max_bytes:t.config.max_request_bytes line with
    | Error (id, e) ->
        (with_trace trace (Protocol.error_response ~id ~request:"unknown" e),
         false)
    | Ok p ->
        let stop = match p.req with Protocol.Shutdown -> true | _ -> false in
        let resp = respond t ~trace p in
        t.last_upload <- None;
        (resp, stop)

(* ------------------------------------------------------------------ *)
(* The batched serve loop                                              *)
(* ------------------------------------------------------------------ *)

(* Each job carries the trace id assigned at read time and the enqueue
   timestamp (0 with metrics off — never read then). *)
type job =
  | Compute of { trace : string; enq : float; p : Protocol.parsed }
      (** read-only: dispatched across the pool *)
  | Immediate of Obs.Json.t  (** already answered (parse/size errors) *)

type item =
  | Job of job
  | Barrier of { trace : string; enq : float; p : Protocol.parsed }

let classify t line : item option =
  if String.trim line = "" then None
  else begin
    let trace = fresh_trace t in
    let enq = if Obs.Metrics.enabled () then Obs.Clock.now () else 0.0 in
    let n = String.length line in
    if n > t.config.max_request_bytes then
      Some
        (Job
           (Immediate
              (with_trace trace (oversize_response n t.config.max_request_bytes))))
    else
      match
        Obs.Span.with_ ~stage:"serve.parse" ~attrs:[ ("trace", trace) ]
        @@ fun () ->
        Protocol.parse_request ~max_bytes:t.config.max_request_bytes line
      with
      | Error (id, e) ->
          Some
            (Job
               (Immediate
                  (with_trace trace
                     (Protocol.error_response ~id ~request:"unknown" e))))
      | Ok p -> (
          match p.req with
          | Protocol.Layout_request _ | Protocol.Lint_request _ ->
              Some (Job (Compute { trace; enq; p }))
          | Protocol.Profile_upload _ | Protocol.Stats | Protocol.Subscribe _
          | Protocol.Health | Protocol.Shutdown ->
              Some (Barrier { trace; enq; p }))
  end

let account t resp =
  Mutex.protect t.lock @@ fun () ->
  let get j key =
    match Obs.Json.member key j with
    | Some (Obs.Json.String s) -> s
    | _ -> "unknown"
  in
  let bump l k =
    match List.assoc_opt k l with
    | Some n -> (k, n + 1) :: List.remove_assoc k l
    | None -> (k, 1) :: l
  in
  t.served <- t.served + 1;
  t.by_type <- bump t.by_type (get resp "request");
  let status = get resp "status" in
  t.by_status <- bump t.by_status status;
  (match Obs.Json.member "tier" resp with
  | Some (Obs.Json.String tier) -> t.by_tier <- bump t.by_tier tier
  | _ -> ());
  Obs.Metrics.incr requests_total;
  if status = "error" then Obs.Metrics.incr errors_total;
  if status = "timeout" then Obs.Metrics.incr timeouts_total

(* Generic loop over a line producer: collects read-only jobs into
   constant-width batches, fans each batch across the default pool,
   emits in input order, and handles barriers serially in between.
   Upload barriers additionally drain push-style staleness
   notifications right after their own response — serially, so the
   notification stream is deterministic at any -j. *)
let serve_generic t ~(next : unit -> string option) ~(emit : Obs.Json.t -> unit)
    =
  let emit_accounted resp =
    Obs.Span.with_ ~stage:"serve.emit" @@ fun () ->
    account t resp;
    emit resp
  in
  let flush jobs =
    let jobs = List.rev jobs in
    if jobs <> [] && Obs.Metrics.enabled () then
      Obs.Metrics.observe batch_size_hist (float_of_int (List.length jobs));
    let run = function
      | Compute { trace; enq; p } -> respond t ~trace ~enq p
      | Immediate r -> r
    in
    let responses =
      match Placement.Pool.default () with
      | Some pool when Placement.Pool.lanes pool > 1 && List.length jobs > 1 ->
          Placement.Pool.map pool run jobs
      | _ -> List.map run jobs
    in
    List.iter emit_accounted responses
  in
  let rec loop pending npending =
    if t.stopped then flush pending
    else
      match next () with
      | None ->
          flush pending  (* EOF: answer everything already read *)
      | Some line -> (
          match classify t line with
          | None -> loop pending npending
          | Some (Job j) ->
              let pending = j :: pending and npending = npending + 1 in
              if npending >= t.config.max_batch then begin
                flush pending;
                loop [] 0
              end
              else loop pending npending
          | Some (Barrier { trace; enq; p }) ->
              flush pending;
              emit_accounted (respond t ~trace ~enq p);
              (* Notifications ride the same stream but are not
                 responses: emitted unaccounted (served/by_type count
                 requests, and the chaos pairing filters them out). *)
              List.iter emit (take_notifications t ~trace);
              (match p.req with
              | Protocol.Shutdown -> t.stopped <- true
              | _ -> ());
              if t.stopped then () else loop [] 0)
  in
  loop [] 0

(* Bounded line reader: never buffers more than the limit; an over-long
   line is consumed to its newline and reported by total length so the
   daemon can answer it with a structured error. *)
let read_bounded ic limit : string option =
  let buf = Buffer.create 256 in
  let over = ref 0 in
  let fin = ref false in
  let eof = ref false in
  while not !fin do
    match In_channel.input_char ic with
    | None ->
        fin := true;
        if Buffer.length buf = 0 && !over = 0 then eof := true
    | Some '\n' -> fin := true
    | Some _ when !over > 0 -> incr over
    | Some c ->
        if Buffer.length buf >= limit then over := Buffer.length buf + 1
        else Buffer.add_char buf c
  done;
  if !eof then None
  else if !over > 0 then
    (* Synthesize a line that classifies as oversized without carrying
       the payload. *)
    Some (String.make (limit + 1) ' ')
  else Some (Buffer.contents buf)

let serve_channels t ic oc =
  serve_generic t
    ~next:(fun () -> read_bounded ic t.config.max_request_bytes)
    ~emit:(fun resp ->
      (* [to_channel] already terminates the line. *)
      Obs.Json.to_channel oc resp;
      flush oc)

let run_lines t lines : Obs.Json.t list =
  let remaining = ref lines in
  let out = ref [] in
  serve_generic t
    ~next:(fun () ->
      match !remaining with
      | [] -> None
      | l :: rest ->
          remaining := rest;
          Some l)
    ~emit:(fun resp -> out := resp :: !out);
  List.rev !out

let stopped t = t.stopped

(* ------------------------------------------------------------------ *)
(* Unix-socket front end                                               *)
(* ------------------------------------------------------------------ *)

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      while not t.stopped do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* A client disconnecting mid-stream must not kill the daemon:
           treat any channel failure as that connection ending. *)
        (try serve_channels t ic oc with Sys_error _ | End_of_file -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)
