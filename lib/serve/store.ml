(* Named profile store: weighted float accumulators per epoch, a
   staleness window that expires old epochs as the current one advances,
   and a materialize-then-validate step whose failure marks the profile
   poisoned and pins readers to the last flow-conserving snapshot. *)

let evictions =
  Obs.Metrics.counter "serve.profile_evictions"
    ~help:"Named profiles dropped from the store by the LRU cap"

(* One epoch's accumulated (weighted) counts.  Floats so fractional
   upload weights merge exactly; rounding happens once, at
   materialization. *)
type acc = {
  blocks : (int * int, float) Hashtbl.t;
  arcs : (int * int * int, float) Hashtbl.t;
  entries : (int, float) Hashtbl.t;
  calls : (int * int * int, float) Hashtbl.t;
}

let acc_create () =
  {
    blocks = Hashtbl.create 64;
    arcs = Hashtbl.create 64;
    entries = Hashtbl.create 16;
    calls = Hashtbl.create 16;
  }

let acc_add tbl k v =
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
  Hashtbl.replace tbl k (prev +. v)

type profile = {
  name : string;
  bench : string;
  prog : Ir.Prog.program;  (** the bench's inlined program *)
  window : int;
  mutable current : int;
  mutable epochs : (int * acc) list;  (** newest epoch first *)
  mutable revision : int;
  mutable uploads : int;
  mutable poisoned : bool;
  mutable fresh : Vm.Profile.t option;
  mutable fresh_violations : int;
  mutable last_good : (int * int * Vm.Profile.t) option;
      (** epoch, revision, snapshot *)
  mutable last_used : int;
}

type t = {
  lock : Mutex.t;
  cap : int option;
  window : int;
  profiles : (string, profile) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
      (* store-local eviction count: deterministic even when the global
         metrics registry is disabled (the replay path) *)
}

let create ?cap ?(window = 4) () =
  (match cap with
  | Some c when c < 1 -> invalid_arg "Store.create: cap must be >= 1"
  | _ -> ());
  if window < 1 then invalid_arg "Store.create: window must be >= 1";
  {
    lock = Mutex.create ();
    cap;
    window;
    profiles = Hashtbl.create 16;
    tick = 0;
    evicted = 0;
  }

let tick t =
  t.tick <- t.tick + 1;
  t.tick

(* ---- structural validation against the bench's program ---- *)

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let validate_upload (prog : Ir.Prog.program) (u : Protocol.upload) :
    string option =
  let nfuncs = Array.length prog.funcs in
  let func what fid =
    if fid < 0 || fid >= nfuncs then
      invalidf "%s: function id %d out of range (%d functions)" what fid nfuncs;
    prog.funcs.(fid)
  in
  let label what (f : Ir.Prog.func) fid lbl =
    if lbl < 0 || lbl >= Array.length f.blocks then
      invalidf "%s: block %d out of range for function %d" what lbl fid
  in
  let count what c =
    if not (Float.is_finite c) || c < 0.0 then
      invalidf "%s: count %g is not a finite non-negative number" what c
  in
  try
    List.iter
      (fun (fid, lbl, c) ->
        let f = func "blocks" fid in
        label "blocks" f fid lbl;
        count "blocks" c)
      u.Protocol.blocks;
    List.iter
      (fun (fid, src, dst, c) ->
        let f = func "arcs" fid in
        label "arcs" f fid src;
        label "arcs" f fid dst;
        count "arcs" c;
        if not (List.mem dst (Ir.Cfg.successors f.blocks.(src))) then
          invalidf "arcs: %d -> %d is not a control-flow arc of function %d"
            src dst fid)
      u.arcs;
    List.iter
      (fun (fid, c) ->
        ignore (func "entries" fid);
        count "entries" c)
      u.entries;
    List.iter
      (fun (fid, blk, callee, c) ->
        let f = func "calls" fid in
        label "calls" f fid blk;
        ignore (func "calls" callee);
        count "calls" c;
        let ok =
          match Ir.Cfg.callee f.blocks.(blk) with
          | Some name -> (
              match Hashtbl.find_opt prog.by_name name with
              | Some i -> i = callee
              | None -> false)
          | None -> false
        in
        if not ok then
          invalidf "calls: block %d of function %d does not call function %d"
            blk fid callee)
      u.calls;
    None
  with Invalid m -> Some m

(* ---- materialization ---- *)

let materialize (prog : Ir.Prog.program) (epochs : (int * acc) list) :
    Vm.Profile.t =
  let p = Vm.Profile.create prog in
  let round v = int_of_float (Float.round v) in
  let sum get =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (_, a) -> Hashtbl.iter (fun k v -> acc_add tbl k v) (get a))
      epochs;
    tbl
  in
  Hashtbl.iter
    (fun (fid, lbl) v -> p.Vm.Profile.funcs.(fid).block_counts.(lbl) <- round v)
    (sum (fun a -> a.blocks));
  Hashtbl.iter
    (fun (fid, src, dst) v ->
      let c = round v in
      if c <> 0 then Hashtbl.replace p.funcs.(fid).arc_counts.(src) dst c)
    (sum (fun a -> a.arcs));
  Hashtbl.iter
    (fun fid v -> p.entry_counts.(fid) <- round v)
    (sum (fun a -> a.entries));
  Hashtbl.iter
    (fun (fid, blk, callee) v ->
      let c = round v in
      if c <> 0 then Hashtbl.replace p.site_counts (fid, blk, callee) c)
    (sum (fun a -> a.calls));
  p.runs <- 1;
  p

(* ---- upload ---- *)

type outcome = {
  accepted : bool;
  reason : string option;  (** ["stale-epoch"] when [accepted] is false *)
  epoch : int;
  min_live : int;
  epochs_live : int;
  poisoned : bool;
  flow_violations : int;
  revision : int;  (** profile revision after the upload *)
}

let min_live_epoch p = max 0 (p.current - p.window + 1)

let evict_unlocked t =
  match t.cap with
  | Some cap when Hashtbl.length t.profiles >= cap ->
      let stalest =
        Hashtbl.fold
          (fun name p acc ->
            match acc with
            | Some (_, best) when best <= p.last_used -> acc
            | _ -> Some (name, p.last_used))
          t.profiles None
      in
      (match stalest with
      | Some (name, _) ->
          Hashtbl.remove t.profiles name;
          t.evicted <- t.evicted + 1;
          Obs.Metrics.incr evictions
      | None -> ())
  | _ -> ()

let upload t ~(prog : Ir.Prog.program) (u : Protocol.upload) :
    (outcome, Protocol.error_info) result =
  Mutex.protect t.lock @@ fun () ->
  let p =
    match Hashtbl.find_opt t.profiles u.Protocol.profile with
    | Some p -> Ok p
    | None ->
        evict_unlocked t;
        let p =
          {
            name = u.profile;
            bench = u.bench;
            prog;
            window = t.window;
            current = 0;
            epochs = [];
            revision = 0;
            uploads = 0;
            poisoned = false;
            fresh = None;
            fresh_violations = 0;
            last_good = None;
            last_used = tick t;
          }
        in
        Hashtbl.replace t.profiles u.profile p;
        Ok p
  in
  match p with
  | Error e -> Error e
  | Ok p when p.bench <> u.bench ->
      Error
        (Protocol.usage_error
           (Printf.sprintf "profile %S is bound to benchmark %S, not %S"
              p.name p.bench u.bench))
  | Ok p -> (
      p.last_used <- tick t;
      let epoch = Option.value ~default:p.current u.epoch in
      if epoch < 0 then Error (Protocol.usage_error "epoch must be >= 0")
      else if epoch < min_live_epoch p then
        Ok
          {
            accepted = false;
            reason = Some "stale-epoch";
            epoch;
            min_live = min_live_epoch p;
            epochs_live = List.length p.epochs;
            poisoned = p.poisoned;
            flow_violations = p.fresh_violations;
            revision = p.revision;
          }
      else
        match validate_upload p.prog u with
        | Some msg -> Error (Protocol.usage_error msg)
        | None ->
            if epoch > p.current then begin
              p.current <- epoch;
              let live = min_live_epoch p in
              p.epochs <- List.filter (fun (e, _) -> e >= live) p.epochs
            end;
            let acc =
              match List.assoc_opt epoch p.epochs with
              | Some a -> a
              | None ->
                  let a = acc_create () in
                  p.epochs <-
                    List.sort (fun (a, _) (b, _) -> compare b a)
                      ((epoch, a) :: p.epochs);
                  a
            in
            let w = u.weight in
            List.iter
              (fun (fid, lbl, c) -> acc_add acc.blocks (fid, lbl) (w *. c))
              u.blocks;
            List.iter
              (fun (fid, src, dst, c) ->
                acc_add acc.arcs (fid, src, dst) (w *. c))
              u.arcs;
            List.iter
              (fun (fid, c) -> acc_add acc.entries fid (w *. c))
              u.entries;
            List.iter
              (fun (fid, blk, callee, c) ->
                acc_add acc.calls (fid, blk, callee) (w *. c))
              u.calls;
            p.uploads <- p.uploads + 1;
            p.revision <- p.revision + 1;
            let vmprof = materialize p.prog p.epochs in
            let violations = Placement.Validate.flow vmprof in
            (match violations with
            | [] ->
                p.fresh <- Some vmprof;
                p.poisoned <- false;
                p.fresh_violations <- 0;
                p.last_good <- Some (epoch, p.revision, vmprof)
            | _ :: _ ->
                p.fresh <- None;
                p.poisoned <- true;
                p.fresh_violations <- List.length violations);
            Ok
              {
                accepted = true;
                reason = None;
                epoch;
                min_live = min_live_epoch p;
                epochs_live = List.length p.epochs;
                poisoned = p.poisoned;
                flow_violations = p.fresh_violations;
                revision = p.revision;
              })

(* ---- read side ---- *)

type view =
  | Fresh of { profile : Vm.Profile.t; revision : int; epoch : int }
  | Last_good of { profile : Vm.Profile.t; revision : int; epoch : int }
  | Empty  (** exists, but no flow-conserving snapshot was ever built *)
  | Unknown

let view t name =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.profiles name with
  | None -> Unknown
  | Some p -> (
      p.last_used <- tick t;
      match p.fresh with
      | Some vmprof when not p.poisoned ->
          Fresh { profile = vmprof; revision = p.revision; epoch = p.current }
      | _ -> (
          match p.last_good with
          | Some (epoch, revision, vmprof) ->
              Last_good { profile = vmprof; revision; epoch }
          | None -> Empty))

let bench_of t name =
  Mutex.protect t.lock @@ fun () ->
  Option.map (fun p -> p.bench) (Hashtbl.find_opt t.profiles name)

let size t = Mutex.protect t.lock @@ fun () -> Hashtbl.length t.profiles

let evictions_total t = Mutex.protect t.lock @@ fun () -> t.evicted

let poisoned_count t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold
    (fun _ (p : profile) n -> if p.poisoned then n + 1 else n)
    t.profiles 0

let stats_json t =
  Mutex.protect t.lock @@ fun () ->
  let rows =
    Hashtbl.fold (fun _ p acc -> p :: acc) t.profiles []
    |> List.sort (fun a b -> compare a.name b.name)
    |> List.map (fun p ->
           Obs.Json.Obj
             [
               ("name", Obs.Json.String p.name);
               ("bench", Obs.Json.String p.bench);
               ("current_epoch", Obs.Json.Int p.current);
               ("epochs_live", Obs.Json.Int (List.length p.epochs));
               ("uploads", Obs.Json.Int p.uploads);
               ("poisoned", Obs.Json.Bool p.poisoned);
               ( "last_good_epoch",
                 match p.last_good with
                 | Some (e, _, _) -> Obs.Json.Int e
                 | None -> Obs.Json.Null );
             ])
  in
  Obs.Json.List rows
