(** Named profile store of the layout service.

    Uploads merge weighted block/arc/entry/call counts into float
    accumulators bucketed by epoch; a staleness window expires old
    epochs as the current one advances, and uploads tagged with an
    expired epoch are answered [accepted = false] (["stale-epoch"])
    rather than erroring.  After every accepted upload the retained
    epochs are summed, rounded once into a {!Vm.Profile.t} over the
    bench's inlined program, and checked with
    {!Placement.Validate.flow}: a violation marks the profile
    {e poisoned} and pins readers to the last flow-conserving snapshot
    (the "last-good epoch" degradation tier).  The store is bounded:
    with a cap set, creating one profile past it evicts the
    least-recently-used one (counted in {!evictions}). *)

type t

val create : ?cap:int -> ?window:int -> unit -> t
(** [cap] bounds the number of named profiles (default unbounded);
    [window] is the number of live epochs (default 4).  Both must be
    [>= 1] ([Invalid_argument] otherwise). *)

type outcome = {
  accepted : bool;
  reason : string option;  (** ["stale-epoch"] when [accepted] is false *)
  epoch : int;  (** the epoch the upload targeted *)
  min_live : int;  (** oldest epoch still inside the window *)
  epochs_live : int;
  poisoned : bool;
  flow_violations : int;
  revision : int;  (** profile revision after the upload *)
}

val upload :
  t ->
  prog:Ir.Prog.program ->
  Protocol.upload ->
  (outcome, Protocol.error_info) result
(** Validate structurally against [prog] (ids in range, counts finite
    and non-negative, arcs along real control-flow edges, call rows at
    real call sites), then merge.  [Error] carries a usage-stage
    {!Protocol.error_info} and leaves the store unchanged. *)

type view =
  | Fresh of { profile : Vm.Profile.t; revision : int; epoch : int }
  | Last_good of { profile : Vm.Profile.t; revision : int; epoch : int }
  | Empty  (** exists, but no flow-conserving snapshot was ever built *)
  | Unknown

val view : t -> string -> view
(** Read the usable snapshot of a named profile.  The returned
    {!Vm.Profile.t} is physically stable until the next accepted upload,
    so address maps keyed on it stay memo-hot. *)

val bench_of : t -> string -> string option
val size : t -> int

val evictions_total : t -> int
(** Profiles this store evicted via its LRU cap — a store-local count,
    deterministic even when the metrics registry is disabled. *)

val poisoned_count : t -> int
(** Profiles currently poisoned (readers pinned to last-good). *)

val stats_json : t -> Obs.Json.t
(** Per-profile summary rows, sorted by name. *)

val evictions : Obs.Metrics.counter
(** Named profiles dropped from the store by the LRU cap. *)
