(** Instruction paging simulation — the paper's §5 "continuing research"
    direction: page faults and Denning working-set behavior of the
    instruction stream.

    Tracks simultaneously an unbounded-memory model (distinct pages
    touched = compulsory faults) and a bounded-frame LRU model, and
    samples the working set |W(t, theta)| periodically. *)

type config = {
  page_bytes : int;
  frames : int;  (** bounded-memory frame count for the LRU model *)
  theta : int;  (** working-set window, in accesses *)
  sample_every : int;  (** working-set sampling period *)
}

val default_config : config
(** 512-byte pages, 16 frames, theta = 10000, sampled every 1000. *)

type t

val create : config -> t
(** Raises [Invalid_argument] on non-positive parameters. *)

val access : t -> int -> unit
(** Record one instruction fetch at a byte address. *)

val access_run : t -> addr:int -> words:int -> unit
(** Record [words] consecutive 4-byte instruction fetches starting at
    byte address [addr].  Bit-identical to calling [access] once per
    word (one span of bookkeeping per page touched instead of one per
    word), including Denning working-set samples that land mid-run. *)

val accesses : t -> int
val distinct_pages : t -> int
(** Compulsory faults: the program's instruction footprint in pages. *)

val lru_faults : t -> int
val fault_rate : t -> float
val mean_working_set : t -> float
val max_working_set : t -> int
