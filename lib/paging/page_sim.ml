(* Instruction paging simulation — the paper's first "continuing research"
   direction (section 5): page faults and working-set behavior of the
   instruction stream under different page sizes.

   Two memory models are tracked simultaneously:
   - unbounded memory: faults are compulsory, i.e. the number of distinct
     pages ever touched (the program's instruction footprint in pages);
   - bounded memory with LRU replacement over a fixed number of frames.

   The Denning working set |W(t, theta)| — pages referenced in the last
   [theta] accesses — is sampled periodically; we report its mean and
   maximum.  Placement should shrink both: the effective regions of all
   functions are packed into few pages. *)

type config = {
  page_bytes : int;
  frames : int; (* bounded-memory frame count for the LRU model *)
  theta : int; (* working-set window, in accesses *)
  sample_every : int; (* working-set sampling period *)
}

let default_config =
  { page_bytes = 512; frames = 16; theta = 10_000; sample_every = 1_000 }

type t = {
  cfg : config;
  last_access : (int, int) Hashtbl.t; (* page -> time of last access *)
  resident : (int, int) Hashtbl.t; (* page -> last touch, LRU model *)
  mutable time : int;
  mutable distinct_pages : int;
  mutable lru_faults : int;
  mutable ws_samples : int;
  mutable ws_sum : int;
  mutable ws_max : int;
}

let create cfg =
  if cfg.page_bytes <= 0 || cfg.frames <= 0 || cfg.theta <= 0 then
    invalid_arg "Page_sim.create";
  {
    cfg;
    last_access = Hashtbl.create 256;
    resident = Hashtbl.create 64;
    time = 0;
    distinct_pages = 0;
    lru_faults = 0;
    ws_samples = 0;
    ws_sum = 0;
    ws_max = 0;
  }

let sample_working_set t =
  let horizon = t.time - t.cfg.theta in
  let live = ref 0 in
  Hashtbl.iter
    (fun _page last -> if last > horizon then incr live)
    t.last_access;
  t.ws_samples <- t.ws_samples + 1;
  t.ws_sum <- t.ws_sum + !live;
  if !live > t.ws_max then t.ws_max <- !live

(* LRU eviction for the bounded model: drop the least recently touched
   resident page. *)
let evict_lru t =
  let victim = ref (-1) in
  let oldest = ref max_int in
  Hashtbl.iter
    (fun page last ->
      if last < !oldest then begin
        oldest := last;
        victim := page
      end)
    t.resident;
  if !victim >= 0 then Hashtbl.remove t.resident !victim

let access t addr =
  t.time <- t.time + 1;
  let page = addr / t.cfg.page_bytes in
  if not (Hashtbl.mem t.last_access page) then
    t.distinct_pages <- t.distinct_pages + 1;
  Hashtbl.replace t.last_access page t.time;
  (* bounded LRU model *)
  if not (Hashtbl.mem t.resident page) then begin
    t.lru_faults <- t.lru_faults + 1;
    if Hashtbl.length t.resident >= t.cfg.frames then evict_lru t;
    Hashtbl.replace t.resident page t.time
  end
  else Hashtbl.replace t.resident page t.time;
  if t.time mod t.cfg.sample_every = 0 then sample_working_set t

(* Bulk access: [words] consecutive 4-byte instruction fetches starting
   at byte address [addr], equivalent to calling [access] once per word.

   Exactness: split the run at page boundaries.  Within a single-page
   span only that page is touched, so no eviction can trigger after the
   span's first fetch and no other page's stamp changes.  The
   intermediate per-word timestamps are observable only at working-set
   sample ticks, where the current page's stamp equals the tick itself
   — so it suffices to fault/evict once at span start, replay the
   sample ticks that fall inside the span, and write the span's final
   time into both tables. *)
let insn_bytes = 4

let access_run t ~addr ~words =
  let wpp = t.cfg.page_bytes / insn_bytes in
  if wpp <= 0 then
    for k = 0 to words - 1 do
      access t (addr + (k * insn_bytes))
    done
  else begin
    let done_ = ref 0 in
    while !done_ < words do
      let a = addr + (!done_ * insn_bytes) in
      let page = a / t.cfg.page_bytes in
      let word_in_page = a mod t.cfg.page_bytes / insn_bytes in
      let span = min (words - !done_) (wpp - word_in_page) in
      let t0 = t.time in
      if not (Hashtbl.mem t.last_access page) then
        t.distinct_pages <- t.distinct_pages + 1;
      if not (Hashtbl.mem t.resident page) then begin
        t.lru_faults <- t.lru_faults + 1;
        if Hashtbl.length t.resident >= t.cfg.frames then evict_lru t
      end;
      Hashtbl.replace t.resident page (t0 + span);
      let se = t.cfg.sample_every in
      let ts = ref (((t0 / se) + 1) * se) in
      while !ts <= t0 + span do
        Hashtbl.replace t.last_access page !ts;
        t.time <- !ts;
        sample_working_set t;
        ts := !ts + se
      done;
      Hashtbl.replace t.last_access page (t0 + span);
      t.time <- t0 + span;
      done_ := !done_ + span
    done
  end

let accesses t = t.time
let distinct_pages t = t.distinct_pages
let lru_faults t = t.lru_faults

let fault_rate t =
  if t.time = 0 then 0. else float_of_int t.lru_faults /. float_of_int t.time

let mean_working_set t =
  if t.ws_samples = 0 then 0.
  else float_of_int t.ws_sum /. float_of_int t.ws_samples

let max_working_set t = t.ws_max
