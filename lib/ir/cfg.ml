(* Control-flow graph: basic blocks and block terminators.

   A call terminates its basic block and carries an explicit return
   continuation.  This keeps both intra-function arcs (branch paths) and
   inter-function arcs (call sites) first-class, which is what the
   placement algorithm consumes. *)

type label = int

type term =
  | Jump of label
  | Br of Insn.operand * label * label (* if operand <> 0 then fst else snd *)
  | Switch of Insn.operand * (int * label) array * label
  | Ret of Insn.operand option
  | Call of {
      callee : string;
      args : Insn.operand list;
      dst : Insn.reg option;
      ret_to : label;
    }

type block = {
  insns : Insn.t array;
  term : term;
  size_override : int option;
      (* When set, the block is treated as containing this many
         instructions for layout and trace-generation purposes; used by the
         code-scaling experiment (paper section 4.2.3). *)
}

let mk_block ?size_override insns term = { insns; term; size_override }

(* Number of instruction slots the block occupies: its straight-line
   instructions plus one terminator instruction.  Layout-invariant: we do
   not delete fall-through jumps, so static size does not depend on block
   order (documented deviation; it keeps Table 5 and code scaling clean and
   is fair to both the natural and the optimized layouts). *)
let instr_count b =
  match b.size_override with
  | Some n -> n
  | None -> Array.length b.insns + 1

let byte_size b = instr_count b * Insn.bytes_per_insn

(* Intra-function successors in terminator order.  The fall-through /
   most-likely-first orientation of [Br] is preserved by lowering.  A
   [Call] has a single intra-function successor: its return continuation
   (the call arc itself lives in the call graph). *)
let successors b =
  match b.term with
  | Jump l -> [ l ]
  | Br (_, t, f) -> [ t; f ]
  | Switch (_, cases, default) ->
    let targets = Array.to_list (Array.map snd cases) @ [ default ] in
    (* Deduplicate while keeping first-occurrence order. *)
    let seen = Hashtbl.create 8 in
    List.filter
      (fun l ->
        if Hashtbl.mem seen l then false
        else begin
          Hashtbl.add seen l ();
          true
        end)
      targets
  | Ret _ -> []
  | Call { ret_to; _ } -> [ ret_to ]

(* Canonical block reachability: the one definition of a statically dead
   block, shared by the simplifier's unreachable sweep, the analysis
   library ([Analysis.Reach]) and the layout linter.  Depth-first from
   the entry block (label 0). *)
let reachable (blocks : block array) : bool array =
  let n = Array.length blocks in
  let reach = Array.make n false in
  if n > 0 then begin
    let rec visit l =
      if not reach.(l) then begin
        reach.(l) <- true;
        List.iter visit (successors blocks.(l))
      end
    in
    visit 0
  end;
  reach

let callee b =
  match b.term with
  | Call { callee; _ } -> Some callee
  | Jump _ | Br _ | Switch _ | Ret _ -> None

let term_mentions_label l = function
  | Jump l' -> l = l'
  | Br (_, t, f) -> l = t || l = f
  | Switch (_, cases, d) -> l = d || Array.exists (fun (_, t) -> t = l) cases
  | Ret _ -> false
  | Call { ret_to; _ } -> l = ret_to

(* Rewrite every label in a terminator through [f]. *)
let map_term_labels f = function
  | Jump l -> Jump (f l)
  | Br (o, t, fl) -> Br (o, f t, f fl)
  | Switch (o, cases, d) ->
    Switch (o, Array.map (fun (v, l) -> (v, f l)) cases, f d)
  | Ret o -> Ret o
  | Call c -> Call { c with ret_to = f c.ret_to }

(* Rewrite every register in a terminator through [f]. *)
let map_term_regs f = function
  | Jump _ as t -> t
  | Br (o, a, b) -> Br (Insn.map_operand_regs f o, a, b)
  | Switch (o, cases, d) -> Switch (Insn.map_operand_regs f o, cases, d)
  | Ret o -> Ret (Option.map (Insn.map_operand_regs f) o)
  | Call c ->
    Call
      {
        c with
        args = List.map (Insn.map_operand_regs f) c.args;
        dst = Option.map f c.dst;
      }

let max_reg_of_term = function
  | Jump _ -> -1
  | Br (o, _, _) | Switch (o, _, _) -> Insn.max_reg (Mov (0, o))
  | Ret (Some o) -> Insn.max_reg (Mov (0, o))
  | Ret None -> -1
  | Call { args; dst; _ } ->
    let d = match dst with Some r -> r | None -> -1 in
    List.fold_left
      (fun acc o -> max acc (Insn.max_reg (Mov (0, o))))
      d args

let max_reg_of_block b =
  Array.fold_left
    (fun acc i -> max acc (Insn.max_reg i))
    (max_reg_of_term b.term)
    b.insns
