(* Seeded random mini-C program generator, used by the differential
   tests and the layout fuzzer (bin/fuzz.ml).

   Programs terminate by construction: the only loops are counted for
   loops with small immediate bounds, and helper functions may call only
   lower-numbered helpers (no recursion).  All memory accesses are masked
   into a scratch buffer, so generated programs never fault.  Every
   program writes observable output (putc of expression values), making
   semantic divergence after a transformation visible.

   The generator lives in [ir] (rather than the test tree) so that
   production binaries can fuzz the pipeline; it therefore carries its
   own deterministic RNG instead of depending on [Workloads.Rng]. *)

open Ast.Dsl

(* Deterministic splitmix64, mirroring Workloads.Rng so promoted callers
   keep reproducible seeds without a dependency cycle. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Gen.Rng.int: non-positive bound";
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let bool t = Int64.logand (next t) 1L = 1L
  let range t lo hi = lo + int t (hi - lo + 1)
  let pick t arr = arr.(int t (Array.length arr))
end

type ctx = {
  rng : Rng.t;
  mutable fuel : int; (* bounds the generated program size *)
  nhelpers : int;
  helper_idx : int; (* helpers may call only helpers below this index *)
  in_loop : bool;
}

let vars = [| "a"; "b"; "c"; "d" |]

let take ctx = ctx.fuel <- ctx.fuel - 1

let rec gen_expr ctx depth =
  take ctx;
  if depth = 0 || ctx.fuel <= 0 then
    if Rng.bool ctx.rng then i (Rng.range ctx.rng (-20) 20)
    else v (Rng.pick ctx.rng vars)
  else begin
    match Rng.int ctx.rng 14 with
    | 0 | 1 | 2 ->
      let op =
        Rng.pick ctx.rng [| ( +% ); ( -% ); ( *% ); ( &% ); ( |% ); ( ^% ) |]
      in
      op (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 3 ->
      (* division by a guaranteed nonzero quantity *)
      gen_expr ctx (depth - 1)
      /% ((gen_expr ctx (depth - 1) &% i 15) +% i 1)
    | 4 ->
      gen_expr ctx (depth - 1)
      %% ((gen_expr ctx (depth - 1) &% i 15) +% i 1)
    | 5 ->
      let cmp =
        Rng.pick ctx.rng
          [| ( <% ); ( <=% ); ( >% ); ( >=% ); ( ==% ); ( <>% ) |]
      in
      cmp (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 6 -> gen_expr ctx (depth - 1) &&% gen_expr ctx (depth - 1)
    | 7 -> gen_expr ctx (depth - 1) ||% gen_expr ctx (depth - 1)
    | 8 ->
      Ast.Cond
        (gen_expr ctx (depth - 1), gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 9 -> not_ (gen_expr ctx (depth - 1))
    | 10 -> neg (gen_expr ctx (depth - 1))
    | 11 ->
      (* masked scratch-buffer load: always in range *)
      ld8 (g "scratch" +% (gen_expr ctx (depth - 1) &% i 63))
    | 12 when ctx.helper_idx > 0 ->
      let callee = Rng.int ctx.rng ctx.helper_idx in
      call
        (Printf.sprintf "helper%d" callee)
        [ gen_expr ctx (depth - 1); gen_expr ctx (depth - 1) ]
    | _ ->
      (gen_expr ctx (depth - 1) <<% i (Rng.int ctx.rng 4))
      >>% i (Rng.int ctx.rng 4)
  end

let rec gen_stmt ctx depth =
  take ctx;
  if depth = 0 || ctx.fuel <= 0 then
    set (Rng.pick ctx.rng vars) (gen_expr ctx 1)
  else begin
    match Rng.int ctx.rng 12 with
    | 0 | 1 | 2 ->
      set (Rng.pick ctx.rng vars) (gen_expr ctx 2)
    | 3 ->
      if_ (gen_expr ctx 2)
        (gen_body ctx (depth - 1))
        (gen_body ctx (depth - 1))
    | 4 -> when_ (gen_expr ctx 2) (gen_body ctx (depth - 1))
    | 5 ->
      (* bounded counted loop; the index variable is loop-local *)
      let n = Rng.range ctx.rng 1 6 in
      let idx = Printf.sprintf "k%d" (Rng.int ctx.rng 1000) in
      for_
        [ decl idx (i 0) ]
        (v idx <% i n)
        [ incr_ idx ]
        (gen_body { ctx with in_loop = true } (depth - 1))
    | 6 when ctx.in_loop && Rng.bool ctx.rng ->
      when_ (gen_expr ctx 1) [ break_ ]
    | 7 when ctx.in_loop && Rng.bool ctx.rng ->
      when_ (gen_expr ctx 1) [ continue_ ]
    | 8 ->
      switch (gen_expr ctx 2 &% i 3)
        [
          ([ 0 ], gen_body ctx (depth - 1) @ [ break_ ]);
          ([ 1; 2 ], gen_body ctx (depth - 1)); (* falls through *)
        ]
        (gen_body ctx (depth - 1))
    | 9 ->
      st8
        (g "scratch" +% (gen_expr ctx 1 &% i 63))
        (gen_expr ctx 2)
    | 10 -> putc (i 0) (gen_expr ctx 2 &% i 255)
    | _ ->
      set (Rng.pick ctx.rng vars)
        (gen_expr ctx 2)
  end

and gen_body ctx depth =
  let n = Rng.range ctx.rng 1 4 in
  List.init n (fun _ -> gen_stmt ctx depth)

let gen_helper ctx idx =
  let body =
    [ decl "a" (v "p0" +% i 1); decl "b" (v "p1"); decl "c" (i 0); decl "d" (i 3) ]
    @ gen_body { ctx with helper_idx = idx } 2
    @ [ ret ((v "a" ^% v "b") +% (v "c" -% v "d")) ]
  in
  func (Printf.sprintf "helper%d" idx) [ "p0"; "p1" ] body

(* Generate a whole program from a seed.  [size] scales the fuel. *)
let generate ?(size = 120) seed : Ast.program =
  let rng = Rng.create seed in
  let nhelpers = Rng.int rng 4 in
  let ctx = { rng; fuel = size; nhelpers; helper_idx = 0; in_loop = false } in
  let helpers = List.init nhelpers (fun idx -> gen_helper ctx idx) in
  let main_body =
    [ decl "a" (i 1); decl "b" (i 2); decl "c" (i 3); decl "d" (i 4) ]
    @ gen_body { ctx with fuel = size; helper_idx = nhelpers } 3
    @ [
        (* make all variable state observable *)
        putc (i 0) (v "a" &% i 255);
        putc (i 0) (v "b" &% i 255);
        putc (i 0) (v "c" &% i 255);
        putc (i 0) (v "d" &% i 255);
        ret ((v "a" +% v "b") ^% (v "c" *% v "d"));
      ]
  in
  {
    Ast.globals = [ ("scratch", Ast.Gzero 64) ];
    funcs = helpers @ [ func "main" [] main_body ];
    entry = "main";
  }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Candidate one-step reductions of a program, coarsest first: drop a
   whole uncalled function, stub a function body down to [return 0],
   remove one top-level statement.  The fuzzer greedily applies any
   candidate that keeps its failure predicate true, to a fixed point,
   yielding a minimal reproducer. *)

let rec expr_calls (e : Ast.expr) acc =
  match e with
  | Ast.Int _ | Ast.Var _ | Ast.Global _ -> acc
  | Ast.Bin (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    expr_calls a (expr_calls b acc)
  | Ast.Neg a | Ast.Not a | Ast.Load8 a | Ast.Load32 a -> expr_calls a acc
  | Ast.Call (f, args) ->
    f :: List.fold_left (fun acc a -> expr_calls a acc) acc args
  | Ast.Intrin (_, args) ->
    List.fold_left (fun acc a -> expr_calls a acc) acc args
  | Ast.Cond (a, b, c) -> expr_calls a (expr_calls b (expr_calls c acc))

let rec stmt_calls (s : Ast.stmt) acc =
  match s with
  | Ast.Decl (_, e) | Ast.Assign (_, e) | Ast.Expr e | Ast.Return (Some e) ->
    expr_calls e acc
  | Ast.Store8 (a, b) | Ast.Store32 (a, b) -> expr_calls a (expr_calls b acc)
  | Ast.If (c, t, e) -> expr_calls c (body_calls t (body_calls e acc))
  | Ast.While (c, b) | Ast.Do_while (b, c) -> expr_calls c (body_calls b acc)
  | Ast.For (init, c, step, b) ->
    body_calls init
      (expr_calls c (body_calls step (body_calls b acc)))
  | Ast.Switch (e, cases, default) ->
    expr_calls e
      (List.fold_left
         (fun acc (_, b) -> body_calls b acc)
         (body_calls default acc)
         cases)
  | Ast.Break | Ast.Continue | Ast.Return None -> acc

and body_calls body acc =
  List.fold_left (fun acc s -> stmt_calls s acc) acc body

let called_names (p : Ast.program) =
  List.concat_map (fun (f : Ast.func) -> body_calls f.body []) p.funcs

let stub_body = [ Ast.Return (Some (Ast.Int 0)) ]

let shrink_candidates (p : Ast.program) : Ast.program list =
  let called = called_names p in
  let drop_func =
    List.filter_map
      (fun (f : Ast.func) ->
        if f.name <> p.entry && not (List.mem f.name called) then
          Some
            { p with Ast.funcs = List.filter (fun g -> g != f) p.funcs }
        else None)
      p.funcs
  in
  let stub_func =
    List.filter_map
      (fun (f : Ast.func) ->
        if f.body = stub_body then None
        else
          Some
            {
              p with
              Ast.funcs =
                List.map
                  (fun g -> if g == f then { g with Ast.body = stub_body } else g)
                  p.funcs;
            })
      p.funcs
  in
  let drop_stmt =
    List.concat_map
      (fun (f : Ast.func) ->
        (* Keep at least one statement so the function stays lowerable. *)
        if List.length f.Ast.body <= 1 then []
        else
          List.mapi
            (fun k _ ->
              let body = List.filteri (fun j _ -> j <> k) f.Ast.body in
              {
                p with
                Ast.funcs =
                  List.map
                    (fun g -> if g == f then { g with Ast.body = body } else g)
                    p.funcs;
              })
            f.Ast.body)
      p.funcs
  in
  drop_func @ stub_func @ drop_stmt

(* Greedy shrink to a fixed point: repeatedly take the first candidate
   reduction on which [still_fails] holds.  [max_steps] bounds the work
   on pathological inputs. *)
let shrink ?(max_steps = 400) (p : Ast.program)
    ~(still_fails : Ast.program -> bool) : Ast.program * int =
  let steps = ref 0 in
  let current = ref p in
  let progress = ref true in
  while !progress && !steps < max_steps do
    progress := false;
    match List.find_opt still_fails (shrink_candidates !current) with
    | Some smaller ->
      current := smaller;
      incr steps;
      progress := true
    | None -> ()
  done;
  (!current, !steps)
