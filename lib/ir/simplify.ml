(* Classic CFG cleanups, run before profiling and again after inline
   expansion (the splices leave argument-move blocks behind):

   - constant folding of instructions whose operands are immediate;
   - branch/switch simplification when the condition is immediate;
   - jump threading through empty forwarding blocks;
   - unreachable-block elimination (with label compaction).

   Reachable-but-never-executed code (cold arms, unused library
   functions) is deliberately untouched — that is the dead code the
   placement algorithm pushes out of the effective region.  Blocks
   carrying a size override (prologue/epilogue padding, scaled code) are
   never treated as empty forwarders. *)

let fold_insn insn =
  match insn with
  | Insn.Bin (op, d, Imm a, Imm b) -> (
    match Insn.eval_binop op a b with
    | value -> Insn.Mov (d, Imm value)
    | exception Division_by_zero -> insn)
  | Insn.Mov _ | Insn.Bin _ | Insn.Load8 _ | Insn.Load32 _ | Insn.Store8 _
  | Insn.Store32 _ | Insn.Intrin _ ->
    insn

let fold_term term =
  match term with
  | Cfg.Br (Imm c, t, f) -> Cfg.Jump (if c <> 0 then t else f)
  | Cfg.Br (_, t, f) when t = f -> Cfg.Jump t
  | Cfg.Switch (Imm v, cases, default) ->
    let target =
      match Array.find_opt (fun (value, _) -> value = v) cases with
      | Some (_, l) -> l
      | None -> default
    in
    Cfg.Jump target
  | Cfg.Jump _ | Cfg.Br _ | Cfg.Switch _ | Cfg.Ret _ | Cfg.Call _ -> term

(* A block that only forwards: no instructions, no size override, ends in
   an unconditional jump. *)
let forward_target (blocks : Cfg.block array) l =
  let b = blocks.(l) in
  if Array.length b.Cfg.insns = 0 && b.Cfg.size_override = None then
    match b.Cfg.term with Cfg.Jump l' -> Some l' | _ -> None
  else None

(* Resolve a jump chain with a cycle guard; the entry block (label 0) is
   never threaded away as a target since calls land there. *)
let rec chase blocks seen l =
  if List.mem l seen then l
  else
    match forward_target blocks l with
    | Some l' when l' <> l -> chase blocks (l :: seen) l'
    | Some _ | None -> l

let thread_jumps (blocks : Cfg.block array) =
  Array.map
    (fun b ->
      { b with Cfg.term = Cfg.map_term_labels (chase blocks []) b.Cfg.term })
    blocks

(* Drop blocks unreachable from the entry, compacting labels (entry stays
   0).  Reachability comes from the canonical [Cfg.reachable], shared
   with [Analysis.Reach] and the layout linter. *)
let sweep_unreachable (blocks : Cfg.block array) =
  let n = Array.length blocks in
  let reach = Cfg.reachable blocks in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for l = 0 to n - 1 do
    if reach.(l) then begin
      remap.(l) <- !next;
      incr next
    end
  done;
  if !next = n then blocks
  else begin
    let fresh = Array.make !next blocks.(0) in
    for l = 0 to n - 1 do
      if reach.(l) then
        fresh.(remap.(l)) <-
          {
            (blocks.(l)) with
            Cfg.term =
              Cfg.map_term_labels (fun t -> remap.(t)) blocks.(l).Cfg.term;
          }
    done;
    fresh
  end

let func (f : Prog.func) : Prog.func =
  let blocks = ref f.Prog.blocks in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    incr rounds;
    let next =
      Array.map
        (fun b ->
          {
            b with
            Cfg.insns = Array.map fold_insn b.Cfg.insns;
            term = fold_term b.Cfg.term;
          })
        !blocks
    in
    let next = thread_jumps next in
    let next = sweep_unreachable next in
    changed := next <> !blocks;
    blocks := next
  done;
  { f with blocks = !blocks }

let program (p : Prog.program) : Prog.program =
  Prog.with_funcs p (Array.map func p.Prog.funcs)
