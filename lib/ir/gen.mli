(** Seeded random mini-C program generator and AST shrinker, shared by
    the differential tests and the layout fuzzer.  Generated programs
    terminate by construction and write observable output. *)

(** Deterministic splitmix64 generator (mirrors [Workloads.Rng], which
    [ir] cannot depend on). *)
module Rng : sig
  type t

  val create : int -> t
  val int : t -> int -> int
  val bool : t -> bool
  val range : t -> int -> int -> int
  val pick : t -> 'a array -> 'a
end

val generate : ?size:int -> int -> Ast.program
(** Generate a whole program from a seed; [size] scales the fuel. *)

val shrink_candidates : Ast.program -> Ast.program list
(** One-step reductions, coarsest first: drop an uncalled non-entry
    function, stub a body to [return 0], drop one top-level statement. *)

val shrink :
  ?max_steps:int ->
  Ast.program ->
  still_fails:(Ast.program -> bool) ->
  Ast.program * int
(** Greedily apply candidate reductions on which [still_fails] holds, to
    a fixed point; returns the minimal reproducer and the number of
    reduction steps taken. *)
