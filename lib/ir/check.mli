(** Structural validation of lowered programs: label ranges, callee
    resolution, register bounds, data-segment extents. *)

val diags : Prog.program -> Diag.t list
(** Every structural violation in the program, in discovery order, as
    [stage = Structure] diagnostics naming the offending function and
    block. *)

val program : Prog.program -> unit
(** Raises {!Diag.Fail} describing the first violation found. *)

val is_valid : Prog.program -> bool
