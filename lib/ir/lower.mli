(** AST -> CFG lowering.

    Translation invariants:
    - every call terminates its basic block (explicit call arcs);
    - short-circuit logicals and ternaries become branch diamonds;
    - [switch] becomes a {!Cfg.term.Switch} terminator with C fall-through;
    - dead statements (after [return]/[break]/[continue]) become real but
      unreachable blocks, like dead code in a binary — these are exactly
      the zero-weight blocks the layout algorithm pushes to the bottom. *)

val globals_base : int
(** First address of the static data segment (addresses below it are
    unmapped, so 0 acts as a null pointer). *)

val program : Ast.program -> Prog.program
(** Lower a whole program.  Raises {!Diag.Fail} (stage [Lower], carrying
    the offending function and block) on unbound variables, unknown
    globals, or malformed control flow; raises [Prog.Unknown_function]
    if the entry point is missing. *)

val program_with_globals :
  Ast.program -> Prog.program * (string, int) Hashtbl.t
(** Same as {!program}, additionally returning the global name->address
    table (useful in tests and examples). *)
