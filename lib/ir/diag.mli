(** Structured diagnostics: every pipeline stage reports violations as a
    [t] carrying stage, severity and context (function, block, strategy)
    instead of a bare [failwith], so fuzzer reproducers and CI logs can
    name the offending node.  Fatal violations travel as {!Fail}. *)

type severity = Warning | Error

type stage =
  | Lower
  | Structure
  | Profile
  | Trace_selection
  | Layout
  | Address_map
  | Simulation
  | Strategy
  | Lint
  | Usage

type t = {
  severity : severity;
  stage : stage;
  func : string option;
  block : int option;
  strategy : string option;
  message : string;
}

exception Fail of t

val stage_name : stage -> string
val severity_name : severity -> string

val exit_code : t -> int
(** Deterministic per-stage process exit code: usage errors exit 2, the
    pipeline stages own 10..17 (lower=10, structure=11, profile=12,
    trace-selection=13, layout=14, address-map=15, simulation=16,
    strategy=17) and the static linter owns 18. *)

val make :
  ?severity:severity ->
  stage:stage ->
  ?func:string ->
  ?block:int ->
  ?strategy:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** Build a diagnostic from a format string. *)

val error :
  stage:stage ->
  ?func:string ->
  ?block:int ->
  ?strategy:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Build an [Error] diagnostic and raise it as {!Fail}. *)

val to_string : t -> string
val pp : t Fmt.t
val is_error : t -> bool
val errors : t list -> t list

val raise_first : t list -> unit
(** Raise the first error of the list as {!Fail}, if any. *)
