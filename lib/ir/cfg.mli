(** Basic blocks and control-flow terminators.

    Calls terminate their block and carry an explicit return continuation,
    so every control transfer — branch path or call site — is an explicit
    arc, exactly the structure the paper's weighted control graph and
    weighted call graph are built over. *)

type label = int
(** Block index within a function; the entry block is label [0]. *)

type term =
  | Jump of label
  | Br of Insn.operand * label * label
      (** [Br (c, t, f)]: to [t] when [c <> 0], else [f]. *)
  | Switch of Insn.operand * (int * label) array * label
      (** Value-indexed dispatch with a default target. *)
  | Ret of Insn.operand option
  | Call of {
      callee : string;
      args : Insn.operand list;
      dst : Insn.reg option;
      ret_to : label;
    }

type block = {
  insns : Insn.t array;
  term : term;
  size_override : int option;
      (** When set, the block occupies this many instruction slots for
          layout/trace purposes — used by the code-scaling experiment
          (paper §4.2.3). *)
}

val mk_block : ?size_override:int -> Insn.t array -> term -> block

val instr_count : block -> int
(** Instruction slots occupied: straight-line instructions plus one
    terminator instruction, unless overridden for code scaling. *)

val byte_size : block -> int
(** [instr_count * Insn.bytes_per_insn]. *)

val successors : block -> label list
(** Intra-function successors, deduplicated, in terminator order.  A call's
    only intra-function successor is its return continuation. *)

val reachable : block array -> bool array
(** Blocks reachable from the entry block (label [0]).  This is the
    canonical definition of a statically dead block: the simplifier's
    unreachable sweep, the [Analysis.Reach] pass and the layout linter
    all route through it.  Labels out of range never appear — run
    {!Check} first on untrusted input. *)

val callee : block -> string option
(** Callee name when the block ends in a call. *)

val term_mentions_label : label -> term -> bool
val map_term_labels : (label -> label) -> term -> term
val map_term_regs : (Insn.reg -> Insn.reg) -> term -> term

val max_reg_of_block : block -> int
(** Highest register index mentioned anywhere in the block, [-1] if none. *)
