(* Whole programs: functions plus a static data segment. *)

type func = {
  name : string;
  nparams : int;
  nregs : int;
  blocks : Cfg.block array;
}

type program = {
  funcs : func array;
  entry : int; (* index of the entry function, conventionally "main" *)
  data : (int * Bytes.t) list; (* initialized data segment images *)
  heap_base : int; (* first address past globals, for Alloc *)
  by_name : (string, int) Hashtbl.t;
}

exception Unknown_function of string

let func_index p name =
  match Hashtbl.find_opt p.by_name name with
  | Some i -> i
  | None -> raise (Unknown_function name)

let func_by_name p name = p.funcs.(func_index p name)

let make ?(data = []) ?(heap_base = 0) ~entry funcs =
  let funcs = Array.of_list funcs in
  let by_name = Hashtbl.create (Array.length funcs * 2) in
  Array.iteri
    (fun i f ->
      if Hashtbl.mem by_name f.name then
        Diag.error ~stage:Diag.Structure ~func:f.name
          "duplicate function name (index %d)" i;
      Hashtbl.add by_name f.name i)
    funcs;
  let entry =
    match Hashtbl.find_opt by_name entry with
    | Some i -> i
    | None -> raise (Unknown_function entry)
  in
  { funcs; entry; data; heap_base; by_name }

(* Rebuild the lookup table after a functional update of [funcs]. *)
let with_funcs p funcs =
  let by_name = Hashtbl.create (Array.length funcs * 2) in
  Array.iteri (fun i f -> Hashtbl.add by_name f.name i) funcs;
  { p with funcs; by_name }

let func_instr_count f =
  Array.fold_left (fun acc b -> acc + Cfg.instr_count b) 0 f.blocks

let func_byte_size f = func_instr_count f * Insn.bytes_per_insn

let total_instr_count p =
  Array.fold_left (fun acc f -> acc + func_instr_count f) 0 p.funcs

let total_byte_size p = total_instr_count p * Insn.bytes_per_insn

let iter_blocks f p =
  Array.iteri
    (fun fid fn -> Array.iteri (fun l b -> f fid fn l b) fn.blocks)
    p.funcs

(* Apply the code-scaling transform of paper section 4.2.3: each block's
   instruction count is scaled by [factor] and rounded to the nearest
   integer.  We clamp at 1 instruction so every block keeps a presence in
   the address space (the paper does not say how it handles rounding to
   zero; a block always retains at least its terminator). *)
let scale_code factor p =
  if factor <= 0. then invalid_arg "Prog.scale_code: factor must be > 0";
  let scale_block b =
    let n = Cfg.instr_count b in
    let scaled = int_of_float (Float.round (float_of_int n *. factor)) in
    { b with Cfg.size_override = Some (max 1 scaled) }
  in
  let scale_func f = { f with blocks = Array.map scale_block f.blocks } in
  with_funcs p (Array.map scale_func p.funcs)
