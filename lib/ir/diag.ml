(* Structured diagnostics for the placement pipeline.

   Every stage of the pipeline (lowering, structural checking, profiling,
   trace selection, layout, address assignment, simulation) reports
   violations as a [Diag.t] instead of a bare [failwith]: the record
   carries the stage, severity and enough context — function name, block
   label, layout-strategy id — for a fuzzer reproducer or a CI log to
   name the offending node without re-running under a debugger.

   Fatal violations travel as the [Fail] exception; validators that scan
   for every violation return [t list] instead and let the caller decide.
   Each stage owns a deterministic process exit code (see {!exit_code})
   so scripted callers can triage failures without parsing messages. *)

type severity = Warning | Error

type stage =
  | Lower (* AST -> CFG translation *)
  | Structure (* well-formedness of a lowered program *)
  | Profile (* flow conservation of recorded weights *)
  | Trace_selection
  | Layout (* per-function block ordering *)
  | Address_map (* address assignment invariants *)
  | Simulation
  | Strategy (* a layout strategy misbehaved or fell back *)
  | Lint (* static layout/cache-conflict linter finding *)
  | Usage (* bad CLI input, unknown entities *)

type t = {
  severity : severity;
  stage : stage;
  func : string option; (* offending function, when known *)
  block : int option; (* offending block label, when known *)
  strategy : string option; (* layout-strategy id, when relevant *)
  message : string;
}

exception Fail of t

let stage_name = function
  | Lower -> "lower"
  | Structure -> "structure"
  | Profile -> "profile"
  | Trace_selection -> "trace-selection"
  | Layout -> "layout"
  | Address_map -> "address-map"
  | Simulation -> "simulation"
  | Strategy -> "strategy"
  | Lint -> "lint"
  | Usage -> "usage"

let severity_name = function Warning -> "warning" | Error -> "error"

(* Deterministic per-stage exit codes, documented in the README.  0 is
   success and 1 the generic uncategorized failure; 2 is reserved for
   usage errors, the pipeline stages own 10..17 and the linter 18. *)
let exit_code t =
  match t.stage with
  | Usage -> 2
  | Lower -> 10
  | Structure -> 11
  | Profile -> 12
  | Trace_selection -> 13
  | Layout -> 14
  | Address_map -> 15
  | Simulation -> 16
  | Strategy -> 17
  | Lint -> 18

let make ?(severity = Error) ~stage ?func ?block ?strategy fmt =
  Fmt.kstr
    (fun message -> { severity; stage; func; block; strategy; message })
    fmt

let error ~stage ?func ?block ?strategy fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Fail { severity = Error; stage; func; block; strategy; message }))
    fmt

let context t =
  match (t.func, t.block, t.strategy) with
  | None, None, None -> ""
  | func, block, strategy ->
    let f = Option.value ~default:"" func in
    let b = match block with Some l -> Printf.sprintf ".b%d" l | None -> "" in
    let s =
      match strategy with Some id -> Printf.sprintf " <%s>" id | None -> ""
    in
    Printf.sprintf " %s%s%s:" f b s

let to_string t =
  Printf.sprintf "[%s %s]%s %s" (severity_name t.severity)
    (stage_name t.stage) (context t) t.message

let pp ppf t = Fmt.string ppf (to_string t)

let is_error t = t.severity = Error

let errors diags = List.filter is_error diags

(* Raise the first error of [diags] as [Fail], if any. *)
let raise_first diags =
  match errors diags with [] -> () | d :: _ -> raise (Fail d)

let () =
  Printexc.register_printer (function
    | Fail t -> Some ("Diag.Fail: " ^ to_string t)
    | _ -> None)
