(* Structural validation of lowered programs.  Run after lowering and
   after every program transformation (inlining, scaling) in tests, and
   by the pipeline validator (Placement.Validate) and the differential
   fuzzer.

   [diags] scans the whole program and reports every violation as a
   structured diagnostic; [program] raises the first as [Diag.Fail]. *)

let check_func (p : Prog.program) (f : Prog.func) acc =
  let acc = ref acc in
  let report ?block fmt =
    Fmt.kstr
      (fun message ->
        acc :=
          Diag.make ~stage:Diag.Structure ~func:f.name ?block "%s" message
          :: !acc)
      fmt
  in
  let n = Array.length f.blocks in
  if n = 0 then report "no blocks";
  if f.nparams > f.nregs then
    report "%d params but only %d regs" f.nparams f.nregs;
  Array.iteri
    (fun l b ->
      let check_label where l' =
        if l' < 0 || l' >= n then
          report ~block:l "%s references label %d outside [0,%d)" where l' n
      in
      List.iter (check_label "terminator") (Cfg.successors b);
      (match b.Cfg.term with
      | Call { callee; ret_to; _ } ->
        check_label "call continuation" ret_to;
        if not (Hashtbl.mem p.by_name callee) then
          report ~block:l "calls unknown function %s" callee
      | Jump _ | Br _ | Switch _ | Ret _ -> ());
      let max_reg = Cfg.max_reg_of_block b in
      if max_reg >= f.nregs then
        report ~block:l "uses register %d >= nregs %d" max_reg f.nregs;
      if Cfg.instr_count b < 1 then report ~block:l "has size < 1")
    f.blocks;
  !acc

let check_data (p : Prog.program) acc =
  List.fold_left
    (fun acc (addr, image) ->
      let acc =
        if addr < 0 then
          Diag.make ~stage:Diag.Structure "data image at negative address %d"
            addr
          :: acc
        else acc
      in
      if addr + Bytes.length image > p.heap_base then
        Diag.make ~stage:Diag.Structure
          "data image at %d overruns heap base %d" addr p.heap_base
        :: acc
      else acc)
    acc p.data

(* Every structural violation in the program, in discovery order. *)
let diags (p : Prog.program) : Diag.t list =
  let acc = ref [] in
  if Array.length p.funcs = 0 then
    acc := [ Diag.make ~stage:Diag.Structure "program has no functions" ];
  if p.entry < 0 || p.entry >= Array.length p.funcs then
    acc :=
      Diag.make ~stage:Diag.Structure "entry index %d out of range [0,%d)"
        p.entry (Array.length p.funcs)
      :: !acc;
  Array.iter (fun f -> acc := check_func p f !acc) p.funcs;
  acc := check_data p !acc;
  List.rev !acc

let program (p : Prog.program) = Diag.raise_first (diags p)

let is_valid p =
  match program p with () -> true | exception Diag.Fail _ -> false
