(** Whole programs: functions plus a static data segment. *)

type func = {
  name : string;
  nparams : int;  (** parameters live in registers [0 .. nparams-1] *)
  nregs : int;  (** number of virtual registers used by the function *)
  blocks : Cfg.block array;  (** entry block is index 0 *)
}

type program = {
  funcs : func array;
  entry : int;  (** index of the entry function *)
  data : (int * Bytes.t) list;  (** initialized data-segment images *)
  heap_base : int;  (** first address past the globals, for [Alloc] *)
  by_name : (string, int) Hashtbl.t;
}

exception Unknown_function of string

val make :
  ?data:(int * Bytes.t) list ->
  ?heap_base:int ->
  entry:string ->
  func list ->
  program
(** Build a program.  Raises {!Diag.Fail} (stage [Structure]) on
    duplicate function names and {!Unknown_function} if [entry] is
    absent. *)

val func_index : program -> string -> int
(** Raises {!Unknown_function}. *)

val func_by_name : program -> string -> func

val with_funcs : program -> func array -> program
(** Functional update of the function array, rebuilding the name index. *)

val func_instr_count : func -> int
val func_byte_size : func -> int
val total_instr_count : program -> int
val total_byte_size : program -> int

val iter_blocks : (int -> func -> Cfg.label -> Cfg.block -> unit) -> program -> unit
(** Iterate over every block as [f fid func label block]. *)

val scale_code : float -> program -> program
(** Code-scaling transform (paper §4.2.3): every block's instruction count
    becomes [max 1 (round (factor * count))].  Semantics are unchanged;
    only the instruction-memory footprint used for layout and trace
    generation scales. *)
