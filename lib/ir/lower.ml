(* AST -> CFG lowering.

   Translation invariants:
   - every call terminates a basic block (its return continuation is a
     fresh block), so call sites are explicit arcs;
   - short-circuit logicals and ternaries lower to branch diamonds;
   - switch lowers to a [Switch] terminator with C fall-through between
     case bodies;
   - statements after a [return]/[break]/[continue] become real (but
     unreachable, hence zero-weight) blocks, like dead code in a binary.

   Virtual registers are mutable slots, not SSA values: each temporary is
   written before use on every path that reads it, so no phi nodes are
   needed. *)

(* All failures raise [Diag.Fail] with [stage = Lower]; in-function
   failures carry the function name and, where meaningful, the basic
   block under construction, so fuzzer reproducers name the node. *)
let fail fmt = Diag.error ~stage:Diag.Lower fmt

type bblock = {
  mutable rev_insns : Insn.t list;
  mutable bterm : Cfg.term option;
}

type fctx = {
  globals : (string, int) Hashtbl.t;
  blocks : (int, bblock) Hashtbl.t;
  mutable nblocks : int;
  mutable cur : int;
  mutable dead : bool; (* true after a terminator, until a block opens *)
  mutable nregs : int;
  mutable scopes : (string, Insn.reg) Hashtbl.t list;
  mutable break_targets : Cfg.label list;
  mutable continue_targets : Cfg.label list;
  fname : string;
}

let new_block ctx =
  let l = ctx.nblocks in
  ctx.nblocks <- l + 1;
  Hashtbl.add ctx.blocks l { rev_insns = []; bterm = None };
  l

let block ctx l = Hashtbl.find ctx.blocks l

let start ctx l =
  ctx.cur <- l;
  ctx.dead <- false

let fresh_reg ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let emit ctx insn =
  if ctx.dead then start ctx (new_block ctx);
  let b = block ctx ctx.cur in
  b.rev_insns <- insn :: b.rev_insns

(* Failure inside a function body: name the function and the block under
   construction. *)
let fail_in ctx fmt =
  Diag.error ~stage:Diag.Lower ~func:ctx.fname ~block:ctx.cur fmt

let terminate ctx term =
  if not ctx.dead then begin
    let b = block ctx ctx.cur in
    (match b.bterm with
    | None -> b.bterm <- Some term
    | Some _ -> fail_in ctx "block terminated twice");
    ctx.dead <- true
  end

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> fail_in ctx "scope underflow"

let declare ctx name =
  match ctx.scopes with
  | scope :: _ ->
    let r = fresh_reg ctx in
    Hashtbl.replace scope name r;
    r
  | [] -> fail_in ctx "no scope for %s" name

let lookup ctx name =
  let rec find = function
    | [] -> fail_in ctx "unbound variable %s" name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some r -> r
      | None -> find rest)
  in
  find ctx.scopes

let global_addr ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some a -> a
  | None -> fail_in ctx "unknown global %s" name

let rec compile_expr ctx (e : Ast.expr) : Insn.operand =
  match e with
  | Int n -> Imm n
  | Var name -> Reg (lookup ctx name)
  | Global name -> Imm (global_addr ctx name)
  | Bin (op, a, b) ->
    let oa = compile_expr ctx a in
    let ob = compile_expr ctx b in
    let d = fresh_reg ctx in
    emit ctx (Bin (op, d, oa, ob));
    Reg d
  | Neg a ->
    let oa = compile_expr ctx a in
    let d = fresh_reg ctx in
    emit ctx (Bin (Insn.Sub, d, Imm 0, oa));
    Reg d
  | Not a ->
    let oa = compile_expr ctx a in
    let d = fresh_reg ctx in
    emit ctx (Bin (Insn.Eq, d, oa, Imm 0));
    Reg d
  | Load8 a ->
    let oa = compile_expr ctx a in
    let d = fresh_reg ctx in
    emit ctx (Load8 (d, oa, Imm 0));
    Reg d
  | Load32 a ->
    let oa = compile_expr ctx a in
    let d = fresh_reg ctx in
    emit ctx (Load32 (d, oa, Imm 0));
    Reg d
  | Call (f, args) ->
    let ops = List.map (compile_expr ctx) args in
    let d = fresh_reg ctx in
    let ret_to = new_block ctx in
    terminate ctx (Call { callee = f; args = ops; dst = Some d; ret_to });
    start ctx ret_to;
    Reg d
  | Intrin (intr, args) ->
    let ops = List.map (compile_expr ctx) args in
    let d = fresh_reg ctx in
    emit ctx (Intrin (intr, Some d, ops));
    Reg d
  | And (a, b) ->
    (* r <- a <> 0 && b <> 0, with b evaluated only when a is nonzero. *)
    let d = fresh_reg ctx in
    let oa = compile_expr ctx a in
    let l_rhs = new_block ctx in
    let l_false = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Br (oa, l_rhs, l_false));
    start ctx l_rhs;
    let ob = compile_expr ctx b in
    emit ctx (Bin (Insn.Ne, d, ob, Imm 0));
    terminate ctx (Jump l_end);
    start ctx l_false;
    emit ctx (Mov (d, Imm 0));
    terminate ctx (Jump l_end);
    start ctx l_end;
    Reg d
  | Or (a, b) ->
    let d = fresh_reg ctx in
    let oa = compile_expr ctx a in
    let l_true = new_block ctx in
    let l_rhs = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Br (oa, l_true, l_rhs));
    start ctx l_true;
    emit ctx (Mov (d, Imm 1));
    terminate ctx (Jump l_end);
    start ctx l_rhs;
    let ob = compile_expr ctx b in
    emit ctx (Bin (Insn.Ne, d, ob, Imm 0));
    terminate ctx (Jump l_end);
    start ctx l_end;
    Reg d
  | Cond (c, t, e) ->
    let d = fresh_reg ctx in
    let oc = compile_expr ctx c in
    let l_t = new_block ctx in
    let l_e = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Br (oc, l_t, l_e));
    start ctx l_t;
    let ot = compile_expr ctx t in
    emit ctx (Mov (d, ot));
    terminate ctx (Jump l_end);
    start ctx l_e;
    let oe = compile_expr ctx e in
    emit ctx (Mov (d, oe));
    terminate ctx (Jump l_end);
    start ctx l_end;
    Reg d

let rec compile_stmt ctx (s : Ast.stmt) =
  match s with
  | Decl (name, e) ->
    let o = compile_expr ctx e in
    let r = declare ctx name in
    emit ctx (Mov (r, o))
  | Assign (name, e) ->
    let o = compile_expr ctx e in
    emit ctx (Mov (lookup ctx name, o))
  | Store8 (addr, value) ->
    let oa = compile_expr ctx addr in
    let ov = compile_expr ctx value in
    emit ctx (Store8 (oa, Imm 0, ov))
  | Store32 (addr, value) ->
    let oa = compile_expr ctx addr in
    let ov = compile_expr ctx value in
    emit ctx (Store32 (oa, Imm 0, ov))
  | If (c, then_s, else_s) ->
    let oc = compile_expr ctx c in
    let l_t = new_block ctx in
    let l_join = new_block ctx in
    let l_e = match else_s with [] -> l_join | _ -> new_block ctx in
    terminate ctx (Br (oc, l_t, l_e));
    start ctx l_t;
    compile_body ctx then_s;
    terminate ctx (Jump l_join);
    (match else_s with
    | [] -> ()
    | _ ->
      start ctx l_e;
      compile_body ctx else_s;
      terminate ctx (Jump l_join));
    start ctx l_join
  | While (c, body) ->
    let l_cond = new_block ctx in
    let l_body = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Jump l_cond);
    start ctx l_cond;
    let oc = compile_expr ctx c in
    terminate ctx (Br (oc, l_body, l_end));
    start ctx l_body;
    in_loop ctx ~break_to:l_end ~continue_to:l_cond (fun () ->
        compile_body ctx body);
    terminate ctx (Jump l_cond);
    start ctx l_end
  | Do_while (body, c) ->
    let l_body = new_block ctx in
    let l_cond = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Jump l_body);
    start ctx l_body;
    in_loop ctx ~break_to:l_end ~continue_to:l_cond (fun () ->
        compile_body ctx body);
    terminate ctx (Jump l_cond);
    start ctx l_cond;
    let oc = compile_expr ctx c in
    terminate ctx (Br (oc, l_body, l_end));
    start ctx l_end
  | For (init, c, step, body) ->
    push_scope ctx;
    compile_body ~scoped:false ctx init;
    let l_cond = new_block ctx in
    let l_body = new_block ctx in
    let l_step = new_block ctx in
    let l_end = new_block ctx in
    terminate ctx (Jump l_cond);
    start ctx l_cond;
    let oc = compile_expr ctx c in
    terminate ctx (Br (oc, l_body, l_end));
    start ctx l_body;
    in_loop ctx ~break_to:l_end ~continue_to:l_step (fun () ->
        compile_body ctx body);
    terminate ctx (Jump l_step);
    start ctx l_step;
    compile_body ~scoped:false ctx step;
    terminate ctx (Jump l_cond);
    pop_scope ctx;
    start ctx l_end
  | Switch (e, cases, default) ->
    let oe = compile_expr ctx e in
    let l_end = new_block ctx in
    let case_labels = List.map (fun _ -> new_block ctx) cases in
    let l_default = match default with [] -> l_end | _ -> new_block ctx in
    let table =
      List.concat
        (List.map2
           (fun (values, _) l -> List.map (fun value -> (value, l)) values)
           cases case_labels)
    in
    terminate ctx (Switch (oe, Array.of_list table, l_default));
    (* Case bodies fall through to the next case, then to default. *)
    let rec next_targets = function
      | [] -> []
      | [ _ ] -> [ l_default ]
      | _ :: (l :: _ as rest) -> l :: next_targets rest
    in
    let fallthroughs = next_targets case_labels in
    ctx.break_targets <- l_end :: ctx.break_targets;
    List.iteri
      (fun idx (_, body) ->
        start ctx (List.nth case_labels idx);
        compile_body ctx body;
        terminate ctx (Jump (List.nth fallthroughs idx)))
      cases;
    (match default with
    | [] -> ()
    | _ ->
      start ctx l_default;
      compile_body ctx default;
      terminate ctx (Jump l_end));
    (match ctx.break_targets with
    | _ :: rest -> ctx.break_targets <- rest
    | [] -> fail_in ctx "break-target underflow after switch");
    start ctx l_end
  | Break -> (
    match ctx.break_targets with
    | l :: _ -> terminate ctx (Jump l)
    | [] -> fail_in ctx "break outside loop/switch")
  | Continue -> (
    match ctx.continue_targets with
    | l :: _ -> terminate ctx (Jump l)
    | [] -> fail_in ctx "continue outside loop")
  | Return None -> terminate ctx (Ret None)
  | Return (Some e) ->
    let o = compile_expr ctx e in
    terminate ctx (Ret (Some o))
  | Expr (Call (f, args)) ->
    (* Statement-position call: discard the result register. *)
    let ops = List.map (compile_expr ctx) args in
    let ret_to = new_block ctx in
    terminate ctx (Call { callee = f; args = ops; dst = None; ret_to });
    start ctx ret_to
  | Expr (Intrin (intr, args)) ->
    let ops = List.map (compile_expr ctx) args in
    emit ctx (Intrin (intr, None, ops))
  | Expr e -> ignore (compile_expr ctx e)

and in_loop ctx ~break_to ~continue_to f =
  ctx.break_targets <- break_to :: ctx.break_targets;
  ctx.continue_targets <- continue_to :: ctx.continue_targets;
  f ();
  (match ctx.break_targets with
  | _ :: rest -> ctx.break_targets <- rest
  | [] -> fail_in ctx "break-target underflow after loop");
  match ctx.continue_targets with
  | _ :: rest -> ctx.continue_targets <- rest
  | [] -> fail_in ctx "continue-target underflow after loop"

and compile_body ?(scoped = true) ctx stmts =
  if scoped then push_scope ctx;
  List.iter (compile_stmt ctx) stmts;
  if scoped then pop_scope ctx

let compile_func globals (f : Ast.func) : Prog.func =
  let ctx =
    {
      globals;
      blocks = Hashtbl.create 64;
      nblocks = 0;
      cur = 0;
      dead = false;
      nregs = 0;
      scopes = [];
      break_targets = [];
      continue_targets = [];
      fname = f.name;
    }
  in
  push_scope ctx;
  List.iter
    (fun p ->
      let r = declare ctx p in
      ignore (r : int))
    f.params;
  let entry = new_block ctx in
  assert (entry = 0);
  start ctx entry;
  compile_body ctx f.body;
  terminate ctx (Ret None);
  pop_scope ctx;
  let nregs = max ctx.nregs 1 in
  (* Real compiled code carries register save/restore sequences that our
     three-address IR does not spell out; account for them in the size
     model so static and dynamic footprints match fixed-format RISC code.
     The entry block gains a prologue, return blocks an epilogue, both
     scaled by how many registers the function touches. *)
  let prologue = 2 + min 8 (nregs / 4) in
  let epilogue = 2 in
  let blocks =
    Array.init ctx.nblocks (fun l ->
        let b = block ctx l in
        let term = match b.bterm with Some t -> t | None -> Cfg.Ret None in
        let insns = Array.of_list (List.rev b.rev_insns) in
        let base = Array.length insns + 1 in
        let size_override =
          match (l, term) with
          | 0, Cfg.Ret _ -> Some (base + prologue + epilogue)
          | 0, _ -> Some (base + prologue)
          | _, Cfg.Ret _ -> Some (base + epilogue)
          | _, _ -> None
        in
        Cfg.mk_block ?size_override insns term)
  in
  { Prog.name = f.name; nparams = List.length f.params; nregs; blocks }

(* Static data is laid out from [globals_base] with 4-byte alignment; the
   heap (for [Alloc]) begins just past the globals.  Address 0 is kept
   unmapped so that 0 can serve as a null pointer. *)
let globals_base = 4096

let align4 n = (n + 3) land lnot 3

let layout_globals (globals : (string * Ast.ginit) list) =
  let table = Hashtbl.create 32 in
  let images = ref [] in
  let addr = ref globals_base in
  List.iter
    (fun (name, init) ->
      if Hashtbl.mem table name then fail "duplicate global %s" name;
      Hashtbl.add table name !addr;
      let size = Ast.ginit_size init in
      let image =
        match init with
        | Ast.Gbytes s -> Some (Bytes.of_string s)
        | Ast.Gstring s -> Some (Bytes.of_string (s ^ "\000"))
        | Ast.Gwords words ->
          let b = Bytes.create (4 * Array.length words) in
          Array.iteri
            (fun idx w -> Bytes.set_int32_le b (4 * idx) (Int32.of_int w))
            words;
          Some b
        | Ast.Gzero _ -> None
      in
      (match image with
      | Some b -> images := (!addr, b) :: !images
      | None -> ());
      addr := align4 (!addr + size))
    globals;
  (table, List.rev !images, align4 (!addr + 16))

let program (p : Ast.program) : Prog.program =
  let table, images, heap_base = layout_globals p.globals in
  let funcs = List.map (compile_func table) p.funcs in
  Prog.make ~data:images ~heap_base ~entry:p.entry funcs

let program_with_globals (p : Ast.program) =
  let table, images, heap_base = layout_globals p.globals in
  let funcs = List.map (compile_func table) p.funcs in
  let prog = Prog.make ~data:images ~heap_base ~entry:p.entry funcs in
  (prog, table)
