(** CFG interpreter: plain execution, execution profiling (via the
    observer), and dynamic-trace generation all use this engine.

    Dynamic instruction counts honor {!Ir.Cfg.block.size_override}, so the
    code-scaling transform is reflected in the fetch stream without
    changing program semantics. *)

open Ir

exception Fault of string

type observer = {
  on_block : int -> Cfg.label -> unit;
      (** [on_block fid label]: the block is about to execute *)
  on_arc : int -> Cfg.label -> Cfg.label -> unit;
      (** intra-function control transfer [src -> dst]; the arc from a call
          block to its return continuation is reported when the call
          returns *)
  on_call : int -> Cfg.label -> int -> unit;
      (** [on_call caller_fid block callee_fid] *)
}

val null_observer : observer

type result = {
  return_value : int;
  dyn_insns : int;  (** dynamic instruction fetches *)
  dyn_blocks : int;
  dyn_calls : int;  (** dynamic function calls *)
  dyn_branches : int;  (** control transfers other than call/return *)
  io : Io.t;  (** inspect outputs with {!Io.output} *)
}

val run :
  ?observer:observer ->
  ?block_sink:(int -> Cfg.label -> unit) ->
  ?fuel:int ->
  Prog.program ->
  Io.input ->
  result
(** Execute the program to completion.  Raises {!Fault} on VM errors
    (division by zero, bad memory access, abort, fuel exhaustion — default
    fuel 2e9 instructions).

    [block_sink fid label] is called for every executed block, after the
    observer's [on_block].  It is the push-based trace path: a sink
    streams fetch runs straight into a consumer (cache simulator,
    compressed trace builder) with no intermediate buffer, and costs
    nothing when absent. *)
