(* CFG interpreter.

   Executes a lowered program against an input, optionally reporting every
   executed block, intra-function arc, and call to an observer.  The same
   machinery serves three purposes:
   - plain execution (workload correctness tests),
   - execution profiling (paper step 1; see [Profile]),
   - dynamic trace generation for the cache simulation (see [Sim]).

   Dynamic instruction counts use [Cfg.instr_count], so the code-scaling
   transform is reflected in the fetch stream without changing semantics. *)

open Ir

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

type observer = {
  on_block : int -> Cfg.label -> unit; (* fid, label: block is executed *)
  on_arc : int -> Cfg.label -> Cfg.label -> unit; (* fid, src, dst *)
  on_call : int -> Cfg.label -> int -> unit; (* caller fid, block, callee *)
}

let null_observer =
  {
    on_block = (fun _ _ -> ());
    on_arc = (fun _ _ _ -> ());
    on_call = (fun _ _ _ -> ());
  }

type result = {
  return_value : int;
  dyn_insns : int; (* instruction fetches, honoring size overrides *)
  dyn_blocks : int;
  dyn_calls : int; (* dynamic function calls *)
  dyn_branches : int; (* control transfers other than call/return *)
  io : Io.t;
}

type frame = {
  caller_fid : int;
  caller_regs : int array;
  ret_dst : int; (* destination register, -1 for none *)
  ret_label : Cfg.label; (* continuation block in the caller *)
  ret_label_src : Cfg.label; (* block that issued the call *)
}

type state = {
  prog : Prog.program;
  mem : Memory.t;
  io : Io.t;
  obs : observer;
  mutable heap : int;
  mutable fuel : int;
  mutable insns : int;
  mutable blocks : int;
  mutable calls : int;
  mutable branches : int;
}

let ev regs = function Insn.Reg r -> regs.(r) | Insn.Imm n -> n

let exec_intrin st regs intr dst args =
  let value =
    match (intr, args) with
    | Insn.Getc, [ s ] -> Io.getc st.io (ev regs s)
    | Insn.Putc, [ s; b ] ->
      Io.putc st.io (ev regs s) (ev regs b);
      0
    | Insn.Stream_len, [ s ] -> Io.stream_len st.io (ev regs s)
    | Insn.Arg, [ idx ] -> Io.arg st.io (ev regs idx)
    | Insn.Alloc, [ n ] ->
      let n = ev regs n in
      if n < 0 then fault "alloc of negative size %d" n;
      let addr = st.heap in
      st.heap <- (st.heap + n + 3) land lnot 3;
      (* Touch the last byte so the memory grows eagerly. *)
      if n > 0 then Memory.write8 st.mem (addr + n - 1) 0;
      addr
    | Insn.Abort, _ -> fault "abort intrinsic executed"
    | (Insn.Getc | Insn.Putc | Insn.Stream_len | Insn.Arg | Insn.Alloc), _ ->
      fault "intrinsic %s: wrong arity" (Insn.intrinsic_name intr)
  in
  match dst with Some r -> regs.(r) <- value | None -> ()

let exec_insn st regs insn =
  match insn with
  | Insn.Mov (d, o) -> regs.(d) <- ev regs o
  | Insn.Bin (op, d, a, b) ->
    let a = ev regs a and b = ev regs b in
    if (op = Insn.Div || op = Insn.Rem) && b = 0 then
      fault "division by zero";
    regs.(d) <- Insn.eval_binop op a b
  | Insn.Load8 (d, b, o) -> regs.(d) <- Memory.read8 st.mem (ev regs b + ev regs o)
  | Insn.Load32 (d, b, o) ->
    regs.(d) <- Memory.read32 st.mem (ev regs b + ev regs o)
  | Insn.Store8 (b, o, value) ->
    Memory.write8 st.mem (ev regs b + ev regs o) (ev regs value)
  | Insn.Store32 (b, o, value) ->
    Memory.write32 st.mem (ev regs b + ev regs o) (ev regs value)
  | Insn.Intrin (intr, dst, args) -> exec_intrin st regs intr dst args

let run ?(observer = null_observer) ?block_sink ?(fuel = 2_000_000_000)
    (prog : Prog.program) (input : Io.input) : result =
  (* A block sink is a second, lightweight block observer used by the
     streaming trace path: composing it into the observer here keeps the
     hot loop at exactly one indirect call per block when no sink is
     attached. *)
  let observer =
    match block_sink with
    | None -> observer
    | Some sink ->
      {
        observer with
        on_block =
          (fun fid label ->
            observer.on_block fid label;
            sink fid label);
      }
  in
  let io = Io.of_input input in
  let st =
    {
      prog;
      mem = Memory.of_program prog;
      io;
      obs = observer;
      heap = prog.heap_base;
      fuel;
      insns = 0;
      blocks = 0;
      calls = 0;
      branches = 0;
    }
  in
  (* The explicit call stack; returning from the entry function ends the
     program. *)
  let stack = ref [] in
  let fid = ref prog.entry in
  let func = ref prog.funcs.(!fid) in
  let regs = ref (Array.make !func.nregs 0) in
  let label = ref 0 in
  let return_value = ref 0 in
  let running = ref true in
  while !running do
    let b = !func.blocks.(!label) in
    st.obs.on_block !fid !label;
    let cost = Cfg.instr_count b in
    st.insns <- st.insns + cost;
    st.blocks <- st.blocks + 1;
    st.fuel <- st.fuel - cost;
    if st.fuel < 0 then fault "out of fuel (%d instructions executed)" st.insns;
    let body = b.Cfg.insns in
    for i = 0 to Array.length body - 1 do
      exec_insn st !regs (Array.unsafe_get body i)
    done;
    match b.Cfg.term with
    | Cfg.Jump l ->
      st.branches <- st.branches + 1;
      st.obs.on_arc !fid !label l;
      label := l
    | Cfg.Br (o, t, f) ->
      st.branches <- st.branches + 1;
      let l = if ev !regs o <> 0 then t else f in
      st.obs.on_arc !fid !label l;
      label := l
    | Cfg.Switch (o, cases, default) ->
      st.branches <- st.branches + 1;
      let scrutinee = ev !regs o in
      let l = ref default in
      (try
         Array.iter
           (fun (value, target) ->
             if value = scrutinee then begin
               l := target;
               raise Exit
             end)
           cases
       with Exit -> ());
      st.obs.on_arc !fid !label !l;
      label := !l
    | Cfg.Ret o -> (
      let value = match o with Some o -> ev !regs o | None -> 0 in
      match !stack with
      | [] ->
        return_value := value;
        running := false
      | fr :: rest ->
        stack := rest;
        (* The intra-function arc from the call block to its return
           continuation is recorded when the call returns. *)
        st.obs.on_arc fr.caller_fid fr.ret_label_src fr.ret_label;
        fid := fr.caller_fid;
        func := prog.funcs.(!fid);
        regs := fr.caller_regs;
        if fr.ret_dst >= 0 then !regs.(fr.ret_dst) <- value;
        label := fr.ret_label)
    | Cfg.Call { callee; args; dst; ret_to } ->
      st.calls <- st.calls + 1;
      let callee_fid = Prog.func_index prog callee in
      st.obs.on_call !fid !label callee_fid;
      let callee_func = prog.funcs.(callee_fid) in
      let callee_regs = Array.make callee_func.nregs 0 in
      List.iteri
        (fun i o ->
          if i < callee_func.nparams then callee_regs.(i) <- ev !regs o)
        args;
      stack :=
        {
          caller_fid = !fid;
          caller_regs = !regs;
          ret_dst = (match dst with Some r -> r | None -> -1);
          ret_label = ret_to;
          ret_label_src = !label;
        }
        :: !stack;
      fid := callee_fid;
      func := callee_func;
      regs := callee_regs;
      label := 0
  done;
  {
    return_value = !return_value;
    dyn_insns = st.insns;
    dyn_blocks = st.blocks;
    dyn_calls = st.calls;
    dyn_branches = st.branches;
    io;
  }
